"""Calibration harness (dev tool): per-app, per-policy thread CPI summary.

Run:  python scripts/calibrate.py [app ...]
"""

import sys
import time

import numpy as np

from repro import SystemConfig, run_application
from repro.trace import list_workloads

POLICIES = ["shared", "static-equal", "model-based", "throughput"]


def main(apps):
    cfg = SystemConfig.default()
    t0 = time.time()
    speedups = []
    for app in apps:
        results = {p: run_application(app, p, cfg) for p in POLICIES}
        print(f"== {app} ==")
        for p, r in results.items():
            cpis = [round(r.thread_cpi(t), 2) for t in range(cfg.n_threads)]
            print(f"  {p:<13} cycles={r.total_cycles/1e6:8.2f}M  cpi={cpis}")
        rd = results["model-based"]
        row = (
            100 * rd.speedup_over(results["shared"]),
            100 * rd.speedup_over(results["static-equal"]),
            100 * rd.speedup_over(results["throughput"]),
        )
        speedups.append(row)
        print("  dyn vs shared %+6.1f%%  vs static %+6.1f%%  vs tput %+6.1f%%" % row)
        # show a few dynamic partitions
        mids = rd.intervals[len(rd.intervals) // 2 :: 10]
        for rec in mids[:3]:
            o = rec.observation
            print(f"    iv{o.index:3d} targets={o.targets} cpi={[round(c,1) for c in o.cpi]}")
    a = np.array(speedups)
    print("AVG  vs shared %+6.1f%%  vs static %+6.1f%%  vs tput %+6.1f%%" % tuple(a.mean(0)))
    print("MAX  vs shared %+6.1f%%  vs static %+6.1f%%  vs tput %+6.1f%%" % tuple(a.max(0)))
    print(f"elapsed {time.time()-t0:.1f}s")


if __name__ == "__main__":
    apps = sys.argv[1:] or list_workloads()
    main(apps)
