"""Fuzz and property tests for the mathx curve-fitting stack.

The runtime's CPI models are rebuilt from noisy observations every
interval, so the fitters must behave on *any* data the simulator can
produce: duplicated or unsorted knots, near-coincident abscissae, flat
and monotone-violating ordinates, huge and tiny magnitudes.  Hypothesis
hunts for inputs that break:

* fitter totals: finite in, finite out; interpolation hits the knots,
* clamp extrapolation stays within the knot ordinate range,
* PCHIP monotonicity on monotone data (its whole reason to exist),
* isotonic regression idempotence, ordering and mean preservation,
* bitwise agreement of the scalar fast paths with the vectorised
  evaluators — the property the fast cache backend's model-based policy
  replay depends on for byte-identical results.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mathx.isotonic import isotonic_nonincreasing
from repro.mathx.pchip import PchipSpline1D
from repro.mathx.spline import CubicSpline1D, LinearModel1D, fit_cpi_model

_ords = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False, width=64
)


@st.composite
def _knots(draw, min_size=1, max_size=12, distinct=True):
    """(x, y) arrays; x strictly increasing when ``distinct``.

    Abscissae come from a 1e-3 grid: in the simulator they are way
    counts (small integers), so sub-denormal knot spacing — where secant
    slopes genuinely overflow — is outside the fitters' contract.
    """
    n = draw(st.integers(min_size, max_size))
    xs = draw(
        st.lists(
            st.integers(min_value=-(10**9), max_value=10**9).map(lambda i: i * 1e-3),
            min_size=n,
            max_size=n,
            unique=distinct,
        )
    )
    ys = draw(st.lists(_ords, min_size=n, max_size=n))
    order = np.argsort(xs)
    return np.asarray(xs, dtype=np.float64)[order], np.asarray(ys, dtype=np.float64)[order]


@settings(max_examples=120, deadline=None)
@given(data=_knots(), queries=st.lists(_ords, min_size=1, max_size=16))
def test_fit_cpi_model_total_on_arbitrary_knots(data, queries):
    x, y = data
    model = fit_cpi_model(x, y)
    out = model(np.asarray(queries))
    assert np.all(np.isfinite(out))
    # Clamp extrapolation can never leave the ordinate envelope... for the
    # linear fitter.  A cubic may overshoot *between* knots but never at
    # them; knot evaluation must reproduce the data.
    at_knots = model(x)
    # The absolute tolerance must scale with the ordinate magnitude: a
    # knot set mixing 0 with ~1e9 cannot reproduce the zero knot to 1e-9
    # absolute in float64 (machine epsilon at 1e9 is ~1e-7).
    scale = max(1.0, float(np.max(np.abs(y))))
    assert np.allclose(at_knots, y, rtol=1e-9, atol=1e-9 * scale)


@settings(max_examples=120, deadline=None)
@given(data=_knots(min_size=2, max_size=10))
def test_pchip_is_monotone_on_monotone_data(data):
    x, y = data
    y = np.sort(y)[::-1]  # non-increasing ordinates
    spline = PchipSpline1D(x, y)
    dense = np.linspace(float(x[0]), float(x[-1]), 257)
    vals = spline(dense)
    assert np.all(np.diff(vals) <= 1e-9 * (1 + np.abs(vals[:-1]))), (
        "PCHIP overshot on monotone data"
    )
    lo, hi = float(np.min(y)), float(np.max(y))
    assert np.all(vals >= lo - 1e-9 * (1 + abs(lo)))
    assert np.all(vals <= hi + 1e-9 * (1 + abs(hi)))


@settings(max_examples=120, deadline=None)
@given(
    data=_knots(min_size=1, max_size=10),
    queries=st.lists(_ords, min_size=1, max_size=32),
)
def test_scalar_fast_paths_bitwise_match_array_paths(data, queries):
    """float(model(q)) must equal model(np.array([q]))[0] to the last ulp.

    The fast replay kernel calls the models one scalar at a time while
    the reference path may batch; the differential-equivalence contract
    therefore needs these to agree exactly, not approximately.
    """
    x, y = data
    models = [fit_cpi_model(x, y)]
    if x.size >= 2:
        models.append(PchipSpline1D(x, y))
        models.append(LinearModel1D(x=x[:2], y=y[:2]))
    if x.size >= 3:
        models.append(CubicSpline1D(x, y))
        models.append(PchipSpline1D(x, y, extrapolation="linear"))
        models.append(CubicSpline1D(x, y, extrapolation="linear"))
    for model in models:
        for q in queries:
            scalar = model(q)
            batched = model(np.asarray([q], dtype=np.float64))[0]
            assert isinstance(scalar, float)
            assert scalar == batched or (np.isnan(scalar) and np.isnan(batched)), (
                f"{type(model).__name__}({q!r}): scalar {scalar!r} != array {batched!r}"
            )


@settings(max_examples=150, deadline=None)
@given(
    values=st.lists(_ords, min_size=0, max_size=24),
    use_weights=st.booleans(),
    data=st.data(),
)
def test_isotonic_nonincreasing_properties(values, use_weights, data):
    v = np.asarray(values, dtype=np.float64)
    w = None
    if use_weights and v.size:
        w = np.asarray(
            data.draw(
                st.lists(
                    st.floats(min_value=1e-3, max_value=1e3, allow_nan=False, width=64),
                    min_size=v.size,
                    max_size=v.size,
                )
            )
        )
    out = isotonic_nonincreasing(v, w)
    assert out.shape == v.shape
    if v.size == 0:
        return
    assert np.all(np.isfinite(out))
    assert np.all(np.diff(out) <= 1e-12 * np.maximum(1.0, np.abs(out[:-1])))
    # Projection preserves the (weighted) mean and is idempotent.
    weights = np.ones_like(v) if w is None else w
    assert np.isclose(np.dot(out, weights), np.dot(v, weights), rtol=1e-6, atol=1e-6)
    again = isotonic_nonincreasing(out, w)
    assert np.allclose(again, out, rtol=1e-12, atol=1e-12)


# ----------------------------------------------------------------------
# Deterministic degenerate-input checks (fast, no hypothesis)
# ----------------------------------------------------------------------


def test_fitters_reject_pathological_inputs():
    with pytest.raises(ValueError):
        fit_cpi_model([], [])
    with pytest.raises(ValueError):
        fit_cpi_model([1.0, 2.0], [np.nan, 0.0])
    with pytest.raises(ValueError):
        fit_cpi_model([np.inf], [1.0])
    with pytest.raises(ValueError):
        PchipSpline1D([1.0], [2.0])
    with pytest.raises(ValueError):
        PchipSpline1D([1.0, 1.0], [2.0, 3.0])
    with pytest.raises(ValueError):
        CubicSpline1D([1.0, 2.0], [0.0, 1.0])
    with pytest.raises(ValueError):
        isotonic_nonincreasing([[1.0, 2.0]])
    with pytest.raises(ValueError):
        isotonic_nonincreasing([1.0], weights=[0.0])


def test_duplicate_knots_collapse_to_mean():
    model = fit_cpi_model([2.0, 2.0, 2.0], [1.0, 2.0, 3.0])
    assert model(2.0) == pytest.approx(2.0)
    assert model(-100.0) == pytest.approx(2.0)  # constant model clamps everywhere


def test_near_coincident_knots_stay_finite():
    x = np.array([1.0, 1.0 + 1e-12, 2.0, 3.0])
    y = np.array([5.0, -5.0, 1.0, 0.0])
    for model in (fit_cpi_model(x, y), PchipSpline1D(x, y)):
        out = model(np.linspace(0.0, 4.0, 101))
        assert np.all(np.isfinite(out))


def test_denormal_secants_do_not_poison_pchip():
    tiny = 5e-324
    spline = PchipSpline1D([0.0, 1.0, 2.0], [0.0, tiny, 0.0])
    out = spline(np.linspace(0.0, 2.0, 33))
    assert np.all(np.isfinite(out))
