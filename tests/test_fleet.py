"""Tests for repro.fleet: discovery, autoscaling, fleet-churn sweeps,
worker-published results — plus the accounting bugfixes that shipped
with the subsystem (member-only loss counting, live admission worker
counts, bracketed-IPv6 addresses).

Everything runs in-process: registrars, workers and controllers are
threads; the subprocess launcher is exercised by the CI fleet smoke
script (``scripts/fleet_smoke.py``), not here.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
import time

import pytest

from repro.dist import ProxyBackend, RemoteEngine, StoreProxyServer, WorkerServer
from repro.dist.registry import (
    WorkerRegistry,
    format_address,
    parse_worker_address,
)
from repro.exec.backend import MemoryBackend, ShardedBackend
from repro.exec.engine import SerialEngine, execute_job
from repro.exec.faults import FaultPlan, FaultRule, set_fault_plan
from repro.exec.jobs import JobSpec
from repro.exec.store import ResultStore
from repro.exec.sweep import run_sweep
from repro.fleet import (
    FileRegistry,
    FleetController,
    FleetRegistrar,
    InProcessLauncher,
    RegistrarClient,
)
from repro.obs import METRICS
from repro.serve.admission import AdmissionController
from repro.sim.config import SystemConfig

APPS = ["ft", "cg"]
POLICIES = ["shared", "static-equal"]
CONFIG = SystemConfig.default().with_(n_intervals=6, interval_instructions=4000)


def _aggregates(engine) -> tuple[object, str]:
    result = run_sweep(APPS, POLICIES, config=CONFIG, engine=engine)
    return result, json.dumps(result.aggregates(), sort_keys=True)


# ---------------------------------------------------------------------------
# Satellite bugfixes
# ---------------------------------------------------------------------------


class TestAddressParsing:
    def test_bracketed_ipv6_parses(self):
        assert parse_worker_address("[::1]:8000") == ("::1", 8000)
        assert parse_worker_address("[2001:db8::2]:9") == ("2001:db8::2", 9)

    def test_ipv6_round_trips_through_format(self):
        address = ("::1", 8000)
        assert format_address(address) == "[::1]:8000"
        assert parse_worker_address(format_address(address)) == address

    def test_ipv4_round_trips_unbracketed(self):
        assert format_address(("127.0.0.1", 80)) == "127.0.0.1:80"
        assert parse_worker_address("127.0.0.1:80") == ("127.0.0.1", 80)

    def test_bare_ipv6_is_rejected_as_ambiguous(self):
        with pytest.raises(ValueError, match="ambiguous"):
            parse_worker_address("::1:8000")

    def test_empty_bracketed_host_rejected(self):
        with pytest.raises(ValueError):
            parse_worker_address("[]:8000")


class TestLossAccounting:
    def test_stranger_loss_is_not_counted(self):
        """A connect-refused retry reports an address that never joined;
        the registry must drop it rather than inflate ``lost``."""
        registry = WorkerRegistry()
        assert registry.note_lost(("127.0.0.1", 1), "connect refused") is False
        assert registry.lost == 0
        assert METRICS.snapshot()["counters"].get("dist.worker_lost", 0) == 0

    def test_double_report_counts_once(self):
        """The dispatch-failure path and the liveness probe can both
        report the same death; only the first may count."""
        registry = WorkerRegistry()
        registry.note_join(("127.0.0.1", 7001), "w1", 42)
        assert registry.note_lost(("127.0.0.1", 7001), "io error") is True
        assert registry.note_lost(("127.0.0.1", 7001), "probe failed") is False
        assert registry.lost == 1
        assert METRICS.snapshot()["counters"]["dist.worker_lost"] == 1


class TestAdmissionWorkers:
    def test_static_int_still_works(self):
        admission = AdmissionController(workers=4)
        assert admission.workers == 4

    def test_static_zero_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(workers=0)

    def test_callable_is_resolved_live(self):
        fleet = {"n": 1}
        admission = AdmissionController(workers=lambda: fleet["n"])
        assert admission.workers == 1
        fleet["n"] = 8
        assert admission.workers == 8

    def test_callable_feeds_retry_after(self):
        fleet = {"n": 1}
        admission = AdmissionController(workers=lambda: fleet["n"])
        timer = METRICS.timer("exec.job")
        timer.observe(2.0)
        slow = admission.retry_after_s(backlog=10)
        fleet["n"] = 10
        fast = admission.retry_after_s(backlog=10)
        assert fast < slow  # more workers, sooner retry

    def test_broken_or_empty_callable_clamps_to_one(self):
        def boom():
            raise RuntimeError("registrar down")

        assert AdmissionController(workers=boom).workers == 1
        assert AdmissionController(workers=lambda: 0).workers == 1


# ---------------------------------------------------------------------------
# Discovery
# ---------------------------------------------------------------------------


class TestFleetRegistrar:
    def test_register_members_deregister(self):
        with FleetRegistrar(probe_interval_s=0).start() as registrar:
            assert registrar.register(("127.0.0.1", 7001), worker_id="w1", pid=11) == 1
            assert registrar.register(("127.0.0.1", 7002), worker_id="w2", pid=22) == 2
            assert registrar.addresses() == [("127.0.0.1", 7001), ("127.0.0.1", 7002)]
            assert registrar.deregister(("127.0.0.1", 7001)) is True
            assert registrar.deregister(("127.0.0.1", 7001)) is False  # idempotent
            assert len(registrar) == 1
        counters = METRICS.snapshot()["counters"]
        assert counters["fleet.registered"] == 2
        assert counters["fleet.evicted"] == 1

    def test_reregistration_is_not_a_fresh_member(self):
        with FleetRegistrar(probe_interval_s=0).start() as registrar:
            registrar.register(("127.0.0.1", 7001), worker_id="w1")
            registrar.register(("127.0.0.1", 7001), worker_id="w1")  # heartbeat
            assert registrar.registered == 1
            assert len(registrar) == 1

    def test_wire_register_and_members(self):
        with FleetRegistrar(probe_interval_s=0).start() as registrar:
            client = RegistrarClient(registrar.address, cache_ttl_s=0.0)
            assert client.register(("127.0.0.1", 7001), worker_id="w1", pid=5) == 1
            members = client.members()
            assert members == [
                {
                    "host": "127.0.0.1",
                    "port": 7001,
                    "worker_id": "w1",
                    "pid": 5,
                    "caps": [],
                }
            ]
            assert client.addresses() == [("127.0.0.1", 7001)]
            assert client.deregister(("127.0.0.1", 7001)) is True
            assert client.addresses() == []

    def test_bind_all_host_rewritten_to_peer(self):
        """A worker that announces 0.0.0.0 is reachable at the peer
        address of its registering connection, not at the bind-all
        address."""
        with FleetRegistrar(probe_interval_s=0).start() as registrar:
            client = RegistrarClient(registrar.address)
            client.register(("0.0.0.0", 7001), worker_id="w1")
            assert registrar.addresses() == [("127.0.0.1", 7001)]

    def test_client_falls_back_to_cached_snapshot(self):
        registrar = FleetRegistrar(probe_interval_s=0).start()
        client = RegistrarClient(registrar.address, cache_ttl_s=0.0, timeout_s=0.5)
        client.register(("127.0.0.1", 7001), worker_id="w1")
        assert client.addresses() == [("127.0.0.1", 7001)]
        registrar.stop()  # the registrar blips away
        assert client.addresses() == [("127.0.0.1", 7001)]  # last good view

    def test_liveness_sweep_evicts_the_unreachable(self):
        alive = WorkerServer().start()
        try:
            with FleetRegistrar(probe_interval_s=0, probe_timeout_s=0.5).start() as registrar:
                dead = WorkerServer()
                dead_address = dead.address
                dead.stop()
                registrar.register(alive.address, worker_id="alive")
                registrar.register(dead_address, worker_id="dead")
                gone = registrar.sweep_once()
                assert gone == [format_address(dead_address)]
                assert registrar.addresses() == [alive.address]
        finally:
            alive.stop()


class TestFileRegistry:
    def test_announce_members_withdraw(self, tmp_path):
        registry = FileRegistry(tmp_path / "fleet")
        registry.announce(("127.0.0.1", 7001), worker_id="w1", caps=["batch"])
        assert registry.addresses() == [("127.0.0.1", 7001)]
        assert registry.members()[0]["caps"] == ["batch"]
        assert registry.withdraw(("127.0.0.1", 7001)) is True
        assert registry.withdraw(("127.0.0.1", 7001)) is False
        assert registry.addresses() == []

    def test_dead_pid_is_pruned(self, tmp_path):
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        registry = FileRegistry(tmp_path)
        registry.announce(("127.0.0.1", 7001), worker_id="gone", pid=proc.pid)
        registry.announce(("127.0.0.1", 7002), worker_id="here")  # our own pid
        assert registry.addresses() == [("127.0.0.1", 7002)]
        assert not registry._path_for(("127.0.0.1", 7001)).exists()
        assert METRICS.snapshot()["counters"]["fleet.evicted"] == 1

    def test_ipv6_announce_round_trips(self, tmp_path):
        registry = FileRegistry(tmp_path)
        registry.announce(("::1", 7001), worker_id="w6")
        assert registry.addresses() == [("::1", 7001)]


# ---------------------------------------------------------------------------
# Fleet churn: mid-sweep join, loss and relaunch, byte-identity throughout
# ---------------------------------------------------------------------------


class FakeMembership:
    """A mutable membership view standing in for a registrar."""

    def __init__(self, addresses=()):
        self._addresses = list(addresses)
        self._lock = threading.Lock()

    def add(self, address):
        with self._lock:
            self._addresses.append(address)

    def addresses(self):
        with self._lock:
            return list(self._addresses)


class TestFleetChurn:
    def test_empty_fleet_requires_some_source(self):
        with pytest.raises(ValueError, match="membership"):
            RemoteEngine([])

    def test_mid_sweep_join_receives_claims(self):
        """A sweep against an initially *empty* fleet completes solely
        via a worker discovered after the batch started."""
        _, serial_agg = _aggregates(SerialEngine())
        membership = FakeMembership()
        engine = RemoteEngine([], membership=membership, fleet_poll_s=0.05)
        worker = WorkerServer().start()
        try:
            timer = threading.Timer(0.3, membership.add, args=[worker.address])
            timer.start()
            result, remote_agg = _aggregates(engine)
            timer.join()
        finally:
            worker.stop()
        assert remote_agg == serial_agg
        assert not result.failures
        assert engine.degraded_reasons == []
        assert worker.jobs_run == len(APPS) * len(POLICIES)
        counters = METRICS.snapshot()["counters"]
        assert counters["dist.workers_admitted"] == 1

    def test_lost_then_relaunched_worker_rejoins(self):
        """Chaos kill mid-batch, replacement discovered mid-batch: the
        sweep never degrades and the aggregates stay byte-identical."""
        _, serial_agg = _aggregates(SerialEngine())
        w1 = WorkerServer().start()
        w2 = WorkerServer().start()
        membership = FakeMembership([w1.address])
        engine = RemoteEngine([], membership=membership, fleet_poll_s=0.05)
        set_fault_plan(
            FaultPlan(rules=(FaultRule(kind="worker-vanish", match="ft/shared", attempts=(1,)),))
        )
        try:
            timer = threading.Timer(0.2, membership.add, args=[w2.address])
            timer.start()
            result, remote_agg = _aggregates(engine)
            timer.join()
        finally:
            w1.stop()
            w2.stop()
        assert remote_agg == serial_agg
        assert not result.failures
        assert engine.degraded_reasons == []
        assert engine.registry.lost == 1  # counted exactly once
        assert w2.jobs_run > 0  # the relaunch actually covered the grid

    def test_undiscovered_fleet_times_out_to_serial(self):
        """No worker ever shows up: the batch still completes, loudly."""
        _, serial_agg = _aggregates(SerialEngine())
        engine = RemoteEngine(
            [], membership=FakeMembership(), fleet_poll_s=0.02, fleet_wait_s=0.2
        )
        result, remote_agg = _aggregates(engine)
        assert remote_agg == serial_agg
        assert not result.failures
        assert engine.degraded_reasons
        assert "no workers discovered" in engine.degraded_reasons[0]


# ---------------------------------------------------------------------------
# Autoscaling
# ---------------------------------------------------------------------------


class FakeHandle:
    def __init__(self):
        self.alive = True
        self.stopped = 0

    @property
    def pid(self):
        return 0

    def stop(self):
        self.stopped += 1
        self.alive = False


class FakeLauncher:
    def __init__(self):
        self.launched: list[FakeHandle] = []

    def launch(self):
        handle = FakeHandle()
        self.launched.append(handle)
        return handle


class TestAutoscalerDecisions:
    """The deterministic decision table: step() given injected signals."""

    def _controller(self, signals, **kwargs):
        kwargs.setdefault("min_workers", 0)
        kwargs.setdefault("max_workers", 2)
        kwargs.setdefault("up_after", 2)
        kwargs.setdefault("down_after", 3)
        launcher = FakeLauncher()
        controller = FleetController(
            launcher,
            backlog_fn=lambda: signals["backlog"],
            rejected_fn=lambda: signals["rejected"],
            **kwargs,
        )
        return controller, launcher

    def test_sustained_backlog_scales_up_after_threshold(self):
        signals = {"backlog": 5, "rejected": 0}
        controller, launcher = self._controller(signals)
        assert controller.step() == 0  # 1st pressure poll: wait
        assert controller.step() == 1  # 2nd: act
        assert len(launcher.launched) == 1
        assert controller.step() == 0  # counter reset; wait again
        assert controller.step() == 1
        assert controller.step() == 0  # at max_workers: never exceed
        assert len(launcher.launched) == 2
        assert METRICS.snapshot()["counters"]["fleet.scale_up"] == 2

    def test_backlog_blip_does_not_scale(self):
        signals = {"backlog": 5, "rejected": 0}
        controller, _ = self._controller(signals)
        assert controller.step() == 0
        signals["backlog"] = 0  # blip over before up_after
        assert controller.step() == 0
        signals["backlog"] = 5
        assert controller.step() == 0  # hot streak restarted from zero
        assert controller.step() == 1

    def test_new_rejections_count_as_pressure(self):
        signals = {"backlog": 0, "rejected": 10}
        controller, _ = self._controller(signals)
        assert controller.step() == 0  # first poll only baselines the counter
        signals["rejected"] = 11
        assert controller.step() == 0
        signals["rejected"] = 12
        assert controller.step() == 1

    def test_sustained_idle_scales_down_slowly(self):
        signals = {"backlog": 5, "rejected": 0}
        controller, launcher = self._controller(signals)
        controller.step(), controller.step()  # scale to 1
        signals["backlog"] = 0
        assert controller.step() == 0
        assert controller.step() == 0
        assert controller.step() == -1  # down_after=3
        assert launcher.launched[0].stopped == 1
        assert controller.step() == 0  # at min_workers: stays empty
        assert METRICS.snapshot()["counters"]["fleet.scale_down"] == 1

    def test_floor_repaired_immediately(self):
        signals = {"backlog": 0, "rejected": 0}
        controller, launcher = self._controller(signals, min_workers=1)
        assert controller.step() == 1  # no hysteresis below the floor
        assert len(launcher.launched) == 1
        launcher.launched[0].alive = False  # SIGKILL equivalent
        assert controller.step() == 1  # prune + immediate relaunch
        assert controller.worker_deaths == 1
        assert METRICS.snapshot()["counters"]["fleet.worker_deaths"] == 1

    def test_broken_signal_idles_the_controller(self):
        launcher = FakeLauncher()

        def boom():
            raise RuntimeError("metrics gone")

        controller = FleetController(
            launcher, max_workers=2, up_after=1, backlog_fn=boom, rejected_fn=boom
        )
        assert controller.step() == 0
        assert launcher.launched == []

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            FleetController(FakeLauncher(), min_workers=3, max_workers=2)
        with pytest.raises(ValueError):
            FleetController(FakeLauncher(), up_after=0)

    def test_stop_terminates_the_fleet(self):
        signals = {"backlog": 1, "rejected": 0}
        controller, launcher = self._controller(signals, up_after=1)
        controller.step()
        controller.stop()
        assert launcher.launched[0].stopped == 1
        assert controller.describe()["workers"] == []


class TestEndToEndAutoscale:
    def test_sweep_served_entirely_by_autoscaled_workers(self):
        """Empty fleet + queued demand: the controller launches workers
        into the registrar, the engine discovers them, the sweep's
        aggregates are byte-identical to serial, and idle drains the
        fleet back down."""
        _, serial_agg = _aggregates(SerialEngine())
        registrar = FleetRegistrar(probe_interval_s=0)
        signals = {"backlog": 4, "rejected": 0}
        controller = FleetController(
            InProcessLauncher(registrar),
            min_workers=0,
            max_workers=2,
            up_after=1,
            down_after=1,
            backlog_fn=lambda: signals["backlog"],
            rejected_fn=lambda: signals["rejected"],
        )
        try:
            assert controller.step() == 1
            assert controller.step() == 1
            assert len(registrar) == 2  # workers self-registered
            engine = RemoteEngine([], membership=registrar, fleet_poll_s=0.05)
            result, remote_agg = _aggregates(engine)
            assert remote_agg == serial_agg
            assert not result.failures
            assert engine.degraded_reasons == []
            signals["backlog"] = 0
            controller.step()  # baseline rejections
            while controller.describe()["workers"]:
                assert controller.step() == -1
            assert len(registrar) == 0  # retirement deregistered them
        finally:
            controller.stop()
            registrar.stop()
        counters = METRICS.snapshot()["counters"]
        assert counters["fleet.scale_up"] == 2
        assert counters["fleet.launched"] == 2


# ---------------------------------------------------------------------------
# Sharded store + worker-published results
# ---------------------------------------------------------------------------


class TestShardedBackend:
    def test_routing_is_stable_and_total(self):
        shards = [MemoryBackend() for _ in range(4)]
        backend = ShardedBackend(shards)
        keys = [f"v1/{i:02x}/{'a' * 8}{i}.json" for i in range(64)]
        for key in keys:
            backend.write(key, b"x")
            assert backend.shard_for(key) is backend.shard_for(key)
        assert sum(len(s.list()) for s in shards) == len(keys)
        assert len([s for s in shards if s.list()]) > 1  # actually spread

    def test_point_ops_route_and_list_merges(self):
        backend = ShardedBackend([MemoryBackend() for _ in range(3)])
        backend.write("v1/aa/1.json", b"one")
        backend.write("v1/bb/2.json", b"two")
        assert backend.read("v1/aa/1.json") == b"one"
        assert backend.exists("v1/bb/2.json")
        assert backend.list("v1/") == ["v1/aa/1.json", "v1/bb/2.json"]
        assert backend.delete("v1/aa/1.json") is True
        assert backend.delete("v1/aa/1.json") is False
        assert backend.list("v1/") == ["v1/bb/2.json"]

    def test_empty_shard_list_rejected(self):
        with pytest.raises(ValueError):
            ShardedBackend([])

    def test_result_store_round_trips_through_shards(self, tmp_path):
        spec = JobSpec("ft", "shared", CONFIG)
        result = execute_job(spec)
        store = ResultStore(tmp_path, backend=ShardedBackend.local(tmp_path, 4))
        store.put(spec, result)
        again = ResultStore(tmp_path, backend=ShardedBackend.local(tmp_path, 4))
        loaded = again.get(spec)
        assert loaded is not None
        assert loaded.total_cycles == result.total_cycles
        assert again.hits == 1
        # Exactly one blob landed, in exactly one shard directory.
        assert sum(1 for _ in tmp_path.glob("shard-*/v*/*/*.json")) == 1

    def test_sweep_stale_sums_across_shards(self):
        shards = [MemoryBackend() for _ in range(2)]
        backend = ShardedBackend(shards)
        assert backend.sweep_stale("v1", 0.0) == sum(
            s.sweep_stale("v1", 0.0) for s in shards
        )


class TestWorkerPublishedResults:
    def _publishing_fleet(self, shared_backend):
        publish = ResultStore("fleet-store", backend=shared_backend)
        workers = [
            WorkerServer(publish_store=publish).start(),
            WorkerServer(publish_store=publish).start(),
        ]
        engine = RemoteEngine([w.address for w in workers], publish_results=True)
        return workers, engine

    def test_publish_cap_advertised(self):
        publishing = WorkerServer(publish_store=ResultStore("s", backend=MemoryBackend()))
        plain = WorkerServer()
        try:
            assert "store-publish" in publishing.caps()
            assert "store-publish" not in plain.caps()
        finally:
            publishing.stop()
            plain.stop()

    def test_published_sweep_is_byte_identical(self):
        """Workers file results into the shared store; the coordinator
        journals slim outcomes — and the aggregates (ints and all) stay
        byte-identical to serial."""
        _, serial_agg = _aggregates(SerialEngine())
        shared = MemoryBackend()
        workers, engine = self._publishing_fleet(shared)
        try:
            result, remote_agg = _aggregates(engine)
        finally:
            for w in workers:
                w.stop()
        assert remote_agg == serial_agg
        assert not result.failures
        n_cells = len(APPS) * len(POLICIES)
        counters = METRICS.snapshot()["counters"]
        assert counters["dist.results_published"] == n_cells
        assert counters["dist.worker.published"] == n_cells
        assert len(shared.list()) == n_cells  # the bytes went store-side

    def test_publish_not_requested_without_engine_flag(self):
        shared = MemoryBackend()
        publish = ResultStore("fleet-store", backend=shared)
        worker = WorkerServer(publish_store=publish).start()
        try:
            engine = RemoteEngine([worker.address])  # publish_results=False
            _, remote_agg = _aggregates(engine)
        finally:
            worker.stop()
        assert shared.list() == []  # nothing published without the ask
        assert METRICS.snapshot()["counters"]["dist.results_published"] == 0

    def test_publish_through_store_proxy(self):
        """The no-shared-filesystem spelling: workers publish through a
        StoreProxyServer and the coordinator reads the same store."""
        _, serial_agg = _aggregates(SerialEngine())
        shared = MemoryBackend()
        proxy = StoreProxyServer(shared).start()
        publish = ResultStore("fleet-store", backend=ProxyBackend(proxy.address))
        worker = WorkerServer(publish_store=publish).start()
        try:
            engine = RemoteEngine([worker.address], publish_results=True)
            result, remote_agg = _aggregates(engine)
        finally:
            worker.stop()
            proxy.stop()
        assert remote_agg == serial_agg
        assert not result.failures
        assert len(shared.list()) == len(APPS) * len(POLICIES)


# ---------------------------------------------------------------------------
# Surfacing: the serve stack and the report
# ---------------------------------------------------------------------------


class TestServeIntegration:
    def test_build_service_wires_registrar_fleet_and_stats(self, tmp_path):
        from repro.serve.runner import ServeSettings, build_service

        settings = ServeSettings(
            data_dir=tmp_path / "serve",
            registrar_port=0,
            fleet_min=0,
            fleet_max=2,
            fleet_launcher=FakeLauncher(),
            store_shards=2,
        )
        service = build_service(settings)
        try:
            assert service.registrar is not None
            assert service.fleet is not None
            assert service.scheduler.engine.name == "remote"
            stats = service.stats()
            assert stats["registrar"]["workers"] == []
            assert stats["registrar"]["address"][1] == service.registrar.address[1]
            assert stats["fleet"]["max_workers"] == 2
            # The registrar is the engine's membership source: a worker
            # that registers becomes visible to admission control.
            assert service.admission.workers == 1  # empty fleet clamps to 1
            service.registrar.register(("127.0.0.1", 7001), worker_id="w1")
            assert service.admission.workers == 1  # static list still empty...
            assert service.scheduler.engine.jobs == 1
        finally:
            if service.fleet is not None:
                service.fleet.stop()
            service.registrar.stop()
        # The store really is sharded behind the same abstraction.
        assert service.store.backend.name == "sharded"
        assert len(service.store.backend.shards) == 2


class TestReportFleetSection:
    def test_summarize_renders_fleet_section(self):
        from repro.obs.export import summarize

        records = [
            {"kind": "worker_registered", "ts": 0.1, "worker": "w1",
             "address": "127.0.0.1:7001", "pid": 11},
            {"kind": "worker_evicted", "ts": 0.9, "worker": "w1",
             "address": "127.0.0.1:7001", "reason": "liveness probe failed"},
            {"kind": "fleet_scale", "ts": 0.5, "direction": "up",
             "workers_before": 0, "workers_after": 1, "backlog": 4,
             "reason": "sustained backlog"},
            {"kind": "fleet_scale", "ts": 0.8, "direction": "down",
             "workers_before": 1, "workers_after": 0, "backlog": 0,
             "reason": "sustained idle"},
        ]
        text = summarize(records)
        assert "fleet: 1 registration(s), 1 eviction(s), 1 scale-up(s), 1 scale-down(s)" in text
        assert "scale up   0 -> 1 (backlog 4)" in text
        assert "EVICTED w1 at 127.0.0.1:7001: liveness probe failed" in text

    def test_fleet_events_round_trip_through_tracer(self, tmp_path):
        from repro.obs import JsonlTracer, set_tracer
        from repro.obs.events import (
            FleetScaleEvent,
            WorkerEvictedEvent,
            WorkerRegisteredEvent,
        )
        from repro.obs.export import read_events, summarize

        path = tmp_path / "fleet.jsonl"
        tracer = JsonlTracer(path)
        set_tracer(tracer)
        try:
            tracer.emit(WorkerRegisteredEvent(worker="w1", address="a:1", pid=1))
            tracer.emit(FleetScaleEvent(direction="up", workers_before=0,
                                        workers_after=1, backlog=2))
            tracer.emit(WorkerEvictedEvent(worker="w1", address="a:1", reason="gone"))
        finally:
            set_tracer(None)
            tracer.close()
        records = read_events(path)
        assert [r["kind"] for r in records] == [
            "worker_registered", "fleet_scale", "worker_evicted",
        ]
        assert "fleet: 1 registration(s)" in summarize(records)
