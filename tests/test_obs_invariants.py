"""Partition invariants over full runs of every registered policy.

The telemetry stream makes system-wide invariants checkable without
instrumenting the engine: a :class:`RecordingTracer` sees every interval
and every repartition decision of a run, so the way-budget and min-ways
invariants can be asserted across the *whole* trajectory of each policy,
not just at the endpoints.
"""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.obs import RecordingTracer
from repro.partition import POLICY_REGISTRY
from repro.sim.config import SystemConfig
from repro.sim.driver import run_application

CONFIG = SystemConfig(
    n_threads=4,
    l2_geometry=CacheGeometry(sets=16, ways=8),
    interval_instructions=1_500,
    n_intervals=8,
    sections_per_interval=2,
)


@pytest.mark.parametrize("policy", sorted(POLICY_REGISTRY))
class TestPartitionInvariants:
    def test_targets_sum_and_min_ways_every_interval(self, policy):
        tracer = RecordingTracer()
        result = run_application("swim", policy, CONFIG, tracer=tracer)
        total_ways = CONFIG.l2_geometry.ways
        intervals = tracer.by_kind("interval")
        assert len(intervals) == len(result.intervals) > 0
        enforcing = POLICY_REGISTRY[policy](
            CONFIG.n_threads, total_ways, min_ways=CONFIG.min_ways
        ).enforce_partition
        for ev in intervals:
            assert len(ev.ways) == CONFIG.n_threads
            assert sum(ev.ways) == total_ways, (
                f"{policy}: interval {ev.index} targets {ev.ways} do not sum to {total_ways}"
            )
            if enforcing:
                assert min(ev.ways) >= CONFIG.min_ways, (
                    f"{policy}: interval {ev.index} targets {ev.ways} violate "
                    f"min_ways={CONFIG.min_ways}"
                )

    def test_repartition_events_are_internally_consistent(self, policy):
        tracer = RecordingTracer()
        run_application("swim", policy, CONFIG, tracer=tracer)
        total_ways = CONFIG.l2_geometry.ways
        for ev in tracer.by_kind("repartition"):
            assert sum(ev.old) == total_ways
            assert sum(ev.new) == total_ways
            assert ev.old != ev.new, "a repartition event must record a change"
            assert ev.moved_ways == sum(abs(n - o) for n, o in zip(ev.new, ev.old)) // 2
            assert ev.moved_ways >= 1
            assert ev.policy == policy

    def test_interval_events_mirror_run_result(self, policy):
        tracer = RecordingTracer()
        result = run_application("swim", policy, CONFIG, tracer=tracer)
        for ev, rec in zip(tracer.by_kind("interval"), result.intervals):
            assert ev.index == rec.observation.index
            assert ev.cpi == rec.observation.cpi
            assert ev.ways == rec.observation.targets
            assert ev.critical_thread == rec.observation.critical_thread

    def test_convergence_distances_are_sane(self, policy):
        tracer = RecordingTracer()
        run_application("swim", policy, CONFIG, tracer=tracer)
        convergences = tracer.by_kind("convergence")
        enforcing = POLICY_REGISTRY[policy](
            CONFIG.n_threads, CONFIG.l2_geometry.ways, min_ways=CONFIG.min_ways
        ).enforce_partition
        if not enforcing:
            assert convergences == []  # no partition, nothing to converge to
            return
        assert convergences
        sets = CONFIG.l2_geometry.sets
        for ev in convergences:
            assert ev.total_sets == sets
            assert 0 <= ev.converged_sets <= sets
            assert 0.0 <= ev.mean_distance <= CONFIG.l2_geometry.ways
            assert ev.max_distance >= ev.mean_distance
