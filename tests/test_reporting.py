"""Tests for the ASCII reporting helpers."""

import pytest

from repro.experiments.reporting import format_bar_chart, format_series, format_table, pct


class TestFormatTable:
    def test_basic(self):
        out = format_table(["a", "bb"], [["x", 1.5], ["yy", 2.0]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "1.500" in out

    def test_title(self):
        out = format_table(["a"], [["x"]], title="T")
        assert out.splitlines()[0] == "T"

    def test_numeric_right_alignment(self):
        out = format_table(["name", "val"], [["a", 5.0], ["bbbb", 125.0]])
        lines = out.splitlines()
        assert lines[-1].endswith("125.000")

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestFormatBarChart:
    def test_positive_bars(self):
        out = format_bar_chart(["x", "y"], [0.1, 0.2])
        assert "#" in out
        assert "+10.0%" in out

    def test_negative_bars_distinct(self):
        out = format_bar_chart(["x"], [-0.1])
        assert "-" in out and "#" not in out.splitlines()[-1].split("  ")[-1].replace("-", "-")

    def test_zero_values_no_crash(self):
        out = format_bar_chart(["x"], [0.0])
        assert "x" in out

    def test_empty(self):
        assert "(no data)" in format_bar_chart([], [], title="t")

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_bar_chart(["x"], [1.0, 2.0])


class TestFormatSeries:
    def test_chunks(self):
        out = format_series("s", list(range(25)), per_line=10)
        lines = out.splitlines()
        assert len(lines) == 4  # header + 3 chunks
        assert "[ 20]" in lines[-1]

    def test_empty(self):
        out = format_series("s", [])
        assert "0 points" in out


class TestPct:
    def test_signed(self):
        assert pct(0.093) == "+9.3%"
        assert pct(-0.05) == "-5.0%"

    def test_unsigned(self):
        assert pct(0.093, signed=False) == "9.3%"
