"""Tests for the runtime thread model bank."""

import numpy as np
import pytest

from repro.core.models import ThreadModelBank


class TestObserve:
    def test_first_observation_taken_verbatim(self):
        bank = ThreadModelBank(2, alpha=0.5)
        bank.observe(0, 8, 4.0)
        assert bank.model(0)(8.0) == pytest.approx(4.0)

    def test_ewma_update(self):
        bank = ThreadModelBank(1, alpha=0.5)
        bank.observe(0, 8, 4.0)
        bank.observe(0, 8, 8.0)
        ways, vals = bank.points(0)
        assert vals[0] == pytest.approx(6.0)

    def test_alpha_one_replaces(self):
        bank = ThreadModelBank(1, alpha=1.0)
        bank.observe(0, 8, 4.0)
        bank.observe(0, 8, 10.0)
        _, vals = bank.points(0)
        assert vals[0] == pytest.approx(10.0)

    def test_distinct_count(self):
        bank = ThreadModelBank(1)
        bank.observe(0, 4, 2.0)
        bank.observe(0, 8, 1.0)
        bank.observe(0, 4, 2.5)
        assert bank.n_distinct(0) == 2

    def test_invalid_thread(self):
        bank = ThreadModelBank(2)
        with pytest.raises(IndexError):
            bank.observe(5, 4, 1.0)

    def test_invalid_value(self):
        bank = ThreadModelBank(1)
        with pytest.raises(ValueError):
            bank.observe(0, 4, float("nan"))
        with pytest.raises(ValueError):
            bank.observe(0, 4, -1.0)

    def test_invalid_ways(self):
        bank = ThreadModelBank(1)
        with pytest.raises(ValueError):
            bank.observe(0, -1, 1.0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ThreadModelBank(1, alpha=0.0)

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            ThreadModelBank(0)


class TestModels:
    def test_model_interpolates(self):
        bank = ThreadModelBank(1)
        bank.observe(0, 4, 8.0)
        bank.observe(0, 8, 4.0)
        assert bank.model(0)(6.0) == pytest.approx(6.0)

    def test_linear_extrapolation_explores(self):
        """The exploration mechanism: beyond observed ways, the model must
        predict continued improvement so the optimiser tries new points."""
        bank = ThreadModelBank(1, extrapolation="linear")
        bank.observe(0, 4, 8.0)
        bank.observe(0, 8, 4.0)
        assert bank.model(0)(10.0) < 4.0

    def test_floor_stops_negative_predictions(self):
        bank = ThreadModelBank(1, extrapolation="linear", floor=0.5)
        bank.observe(0, 4, 8.0)
        bank.observe(0, 8, 1.0)
        assert bank.model(0)(30.0) == pytest.approx(0.5)

    def test_clamp_mode_holds_boundaries(self):
        bank = ThreadModelBank(1, extrapolation="clamp")
        bank.observe(0, 4, 8.0)
        bank.observe(0, 8, 4.0)
        assert bank.model(0)(30.0) == pytest.approx(4.0)

    def test_model_invalidated_on_new_observation(self):
        bank = ThreadModelBank(1, alpha=1.0)
        bank.observe(0, 4, 8.0)
        m1 = bank.model(0)(4.0)
        bank.observe(0, 4, 2.0)
        assert bank.model(0)(4.0) != m1

    def test_model_without_observations_raises(self):
        bank = ThreadModelBank(2)
        bank.observe(0, 4, 1.0)
        with pytest.raises(ValueError):
            bank.model(1)

    def test_predict_vector(self):
        bank = ThreadModelBank(2)
        bank.observe(0, 4, 8.0)
        bank.observe(1, 4, 2.0)
        pred = bank.predict([4, 4])
        assert isinstance(pred, np.ndarray)
        assert pred[0] == pytest.approx(8.0)
        assert pred[1] == pytest.approx(2.0)

    def test_predict_wrong_length(self):
        bank = ThreadModelBank(2)
        bank.observe(0, 4, 1.0)
        bank.observe(1, 4, 1.0)
        with pytest.raises(ValueError):
            bank.predict([4])

    def test_spline_with_three_plus_points(self):
        bank = ThreadModelBank(1)
        for w, v in [(2, 10.0), (4, 6.0), (8, 4.0), (16, 3.5)]:
            bank.observe(0, w, v)
        m = bank.model(0)
        for w, v in [(2, 10.0), (4, 6.0), (8, 4.0), (16, 3.5)]:
            assert m(float(w)) == pytest.approx(v)

    def test_reset(self):
        bank = ThreadModelBank(1)
        bank.observe(0, 4, 1.0)
        bank.reset()
        assert bank.n_distinct(0) == 0


class TestIncrementalRefit:
    """Observations invalidate only their own thread's model, and a dirty
    model whose knots did not actually change reuses the cached fit."""

    def _metrics(self):
        from repro.obs.metrics import METRICS

        return METRICS

    def test_clean_thread_returns_cached_object(self):
        bank = ThreadModelBank(1)
        bank.observe(0, 4, 8.0)
        bank.observe(0, 8, 4.0)
        assert bank.model(0) is bank.model(0)

    def test_other_threads_models_survive_an_observation(self):
        bank = ThreadModelBank(2)
        for t in (0, 1):
            bank.observe(t, 4, 8.0)
            bank.observe(t, 8, 4.0)
        m0, m1 = bank.model(0), bank.model(1)
        bank.observe(0, 12, 2.0)
        assert bank.model(1) is m1, "thread 1's fit must not be invalidated"
        assert bank.model(0) is not m0, "thread 0's fit must be refit"

    def test_unchanged_knots_skip_the_refit(self):
        metrics = self._metrics()
        bank = ThreadModelBank(1, alpha=1.0)
        bank.observe(0, 4, 8.0)
        bank.observe(0, 8, 4.0)
        m = bank.model(0)
        fits = metrics.counter("models.fits").value
        # alpha=1 replaces the cell with the identical value: the thread is
        # dirty but its knots are bit-identical, so the fit is reused.
        bank.observe(0, 8, 4.0)
        assert bank.model(0) is m
        assert metrics.counter("models.fits").value == fits
        assert metrics.counter("models.refits_avoided").value >= 1

    def test_changed_knots_do_refit(self):
        metrics = self._metrics()
        bank = ThreadModelBank(1, alpha=1.0)
        bank.observe(0, 4, 8.0)
        before = metrics.counter("models.fits").value
        bank.model(0)
        bank.observe(0, 4, 6.0)
        bank.model(0)
        assert metrics.counter("models.fits").value == before + 2

    def test_matches_a_fresh_bank_bit_for_bit(self):
        """Interleaved observe/model calls must leave the bank predicting
        exactly what a fresh bank fed the same history predicts."""
        rng = np.random.default_rng(11)
        history = [
            (int(rng.integers(0, 3)), int(rng.integers(1, 12)), float(rng.uniform(0.5, 9.0)))
            for _ in range(60)
        ]
        incremental = ThreadModelBank(3, alpha=0.5)
        for i, (t, w, v) in enumerate(history):
            incremental.observe(t, w, v)
            if i % 3 == 0:  # interleave fits with observations
                incremental.model(t)
        fresh = ThreadModelBank(3, alpha=0.5)
        for t, w, v in history:
            fresh.observe(t, w, v)
        query = [float(w) for w in range(1, 13)]
        for t in range(3):
            a = [incremental.model(t)(q) for q in query]
            b = [fresh.model(t)(q) for q in query]
            assert a == b, f"thread {t}: incremental refit diverged from scratch fit"

    def test_reset_clears_fitted_state(self):
        bank = ThreadModelBank(1)
        bank.observe(0, 4, 8.0)
        bank.model(0)
        bank.reset()
        with pytest.raises(ValueError):
            bank.model(0)
