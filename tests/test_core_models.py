"""Tests for the runtime thread model bank."""

import numpy as np
import pytest

from repro.core.models import ThreadModelBank


class TestObserve:
    def test_first_observation_taken_verbatim(self):
        bank = ThreadModelBank(2, alpha=0.5)
        bank.observe(0, 8, 4.0)
        assert bank.model(0)(8.0) == pytest.approx(4.0)

    def test_ewma_update(self):
        bank = ThreadModelBank(1, alpha=0.5)
        bank.observe(0, 8, 4.0)
        bank.observe(0, 8, 8.0)
        ways, vals = bank.points(0)
        assert vals[0] == pytest.approx(6.0)

    def test_alpha_one_replaces(self):
        bank = ThreadModelBank(1, alpha=1.0)
        bank.observe(0, 8, 4.0)
        bank.observe(0, 8, 10.0)
        _, vals = bank.points(0)
        assert vals[0] == pytest.approx(10.0)

    def test_distinct_count(self):
        bank = ThreadModelBank(1)
        bank.observe(0, 4, 2.0)
        bank.observe(0, 8, 1.0)
        bank.observe(0, 4, 2.5)
        assert bank.n_distinct(0) == 2

    def test_invalid_thread(self):
        bank = ThreadModelBank(2)
        with pytest.raises(IndexError):
            bank.observe(5, 4, 1.0)

    def test_invalid_value(self):
        bank = ThreadModelBank(1)
        with pytest.raises(ValueError):
            bank.observe(0, 4, float("nan"))
        with pytest.raises(ValueError):
            bank.observe(0, 4, -1.0)

    def test_invalid_ways(self):
        bank = ThreadModelBank(1)
        with pytest.raises(ValueError):
            bank.observe(0, -1, 1.0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ThreadModelBank(1, alpha=0.0)

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            ThreadModelBank(0)


class TestModels:
    def test_model_interpolates(self):
        bank = ThreadModelBank(1)
        bank.observe(0, 4, 8.0)
        bank.observe(0, 8, 4.0)
        assert bank.model(0)(6.0) == pytest.approx(6.0)

    def test_linear_extrapolation_explores(self):
        """The exploration mechanism: beyond observed ways, the model must
        predict continued improvement so the optimiser tries new points."""
        bank = ThreadModelBank(1, extrapolation="linear")
        bank.observe(0, 4, 8.0)
        bank.observe(0, 8, 4.0)
        assert bank.model(0)(10.0) < 4.0

    def test_floor_stops_negative_predictions(self):
        bank = ThreadModelBank(1, extrapolation="linear", floor=0.5)
        bank.observe(0, 4, 8.0)
        bank.observe(0, 8, 1.0)
        assert bank.model(0)(30.0) == pytest.approx(0.5)

    def test_clamp_mode_holds_boundaries(self):
        bank = ThreadModelBank(1, extrapolation="clamp")
        bank.observe(0, 4, 8.0)
        bank.observe(0, 8, 4.0)
        assert bank.model(0)(30.0) == pytest.approx(4.0)

    def test_model_invalidated_on_new_observation(self):
        bank = ThreadModelBank(1, alpha=1.0)
        bank.observe(0, 4, 8.0)
        m1 = bank.model(0)(4.0)
        bank.observe(0, 4, 2.0)
        assert bank.model(0)(4.0) != m1

    def test_model_without_observations_raises(self):
        bank = ThreadModelBank(2)
        bank.observe(0, 4, 1.0)
        with pytest.raises(ValueError):
            bank.model(1)

    def test_predict_vector(self):
        bank = ThreadModelBank(2)
        bank.observe(0, 4, 8.0)
        bank.observe(1, 4, 2.0)
        pred = bank.predict([4, 4])
        assert isinstance(pred, np.ndarray)
        assert pred[0] == pytest.approx(8.0)
        assert pred[1] == pytest.approx(2.0)

    def test_predict_wrong_length(self):
        bank = ThreadModelBank(2)
        bank.observe(0, 4, 1.0)
        bank.observe(1, 4, 1.0)
        with pytest.raises(ValueError):
            bank.predict([4])

    def test_spline_with_three_plus_points(self):
        bank = ThreadModelBank(1)
        for w, v in [(2, 10.0), (4, 6.0), (8, 4.0), (16, 3.5)]:
            bank.observe(0, w, v)
        m = bank.model(0)
        for w, v in [(2, 10.0), (4, 6.0), (8, 4.0), (16, 3.5)]:
            assert m(float(w)) == pytest.approx(v)

    def test_reset(self):
        bank = ThreadModelBank(1)
        bank.observe(0, 4, 1.0)
        bank.reset()
        assert bank.n_distinct(0) == 0
