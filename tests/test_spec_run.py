"""``run_experiment``'s contract: spec-driven == flag-driven, exactly.

The tentpole guarantee of the spec subsystem is that declaring a sweep in
a file changes *nothing* about what runs: the resume-invariant aggregates
of ``repro run-spec`` are byte-identical to the equivalent flag-driven
``repro sweep`` (serial and pool), a spec's journal resumes like any
sweep journal, and the ``expectations`` block turns aggregate drift into
a non-zero exit.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.exec.engine import SerialEngine
from repro.exec.journal import JournalMismatchError, SweepJournal
from repro.exec.pool import ProcessPoolEngine
from repro.exec.sweep import run_sweep
from repro.spec import check_expectations, parse_spec, run_experiment, smoke_spec

SPECS_DIR = Path(__file__).parent.parent / "specs"

DOC = {
    "spec_version": 1,
    "name": "conformance",
    "grid": {"apps": ["ft", "cg"], "policies": ["shared", "static-equal"]},
    "config": {"intervals": 3, "interval_instructions": 2000},
}


def _agg(result) -> str:
    return json.dumps(result.aggregates(), sort_keys=True)


class TestSpecVsFlags:
    def test_serial_aggregates_are_byte_identical(self):
        spec = parse_spec(DOC)
        from_spec = run_experiment(spec)
        engine = SerialEngine()
        from_flags = run_sweep(
            ["ft", "cg"], ["shared", "static-equal"],
            seeds=[1], thread_counts=[4],
            config=spec.grid.config(), engine=engine, baseline="shared",
        )
        assert _agg(from_spec) == _agg(from_flags)

    def test_pool_aggregates_match_serial(self):
        spec = parse_spec({**DOC, "engine": {"jobs": 2}})
        assert spec.engine.resolved_kind() == "pool"
        from_pool = run_experiment(spec)
        from_serial = run_experiment(parse_spec(DOC))
        assert _agg(from_pool) == _agg(from_serial)

    def test_cli_run_spec_matches_cli_sweep(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(DOC))
        assert main(["run-spec", str(path), "--json"]) == 0
        spec_out = json.loads(capsys.readouterr().out)
        assert main([
            "sweep", "--apps", "ft", "cg",
            "--policies", "shared", "static-equal",
            "--intervals", "3", "--interval-instructions", "2000", "--json",
        ]) == 0
        flags_out = json.loads(capsys.readouterr().out)
        keys = ("apps", "policies", "seeds", "thread_counts", "baseline",
                "cells", "mean_speedups")
        for key in keys:
            assert json.dumps(spec_out[key], sort_keys=True) == \
                json.dumps(flags_out[key], sort_keys=True), key

    def test_spec_store_and_flag_store_file_identical_cells(self, tmp_path):
        spec = parse_spec(DOC)
        run_experiment(spec, store_dir=tmp_path / "a")
        engine = SerialEngine()
        run_sweep(
            ["ft", "cg"], ["shared", "static-equal"],
            seeds=[1], thread_counts=[4], config=spec.grid.config(),
            engine=engine, baseline="shared",
            store=__import__("repro.exec.store", fromlist=["ResultStore"])
            .ResultStore(tmp_path / "b"),
        )
        keys_a = sorted(p.name for p in (tmp_path / "a").glob("v*/*/*.json"))
        keys_b = sorted(p.name for p in (tmp_path / "b").glob("v*/*/*.json"))
        assert keys_a == keys_b and len(keys_a) == 4


class TestJournalResume:
    def test_spec_journal_resumes_without_recomputation(self, tmp_path):
        journal = tmp_path / "spec.journal"
        doc = {**DOC, "journal": {"path": str(journal), "resume": True}}
        spec = parse_spec(doc)
        first = run_experiment(spec)
        assert journal.is_file() and first.resumed == 0
        again = run_experiment(spec)
        assert again.resumed == 4 and again.simulated == 0
        assert _agg(again) == _agg(first)

    def test_partial_journal_resumes_only_the_remainder(self, tmp_path):
        journal = tmp_path / "spec.journal"
        doc = {**DOC, "journal": {"path": str(journal), "resume": True}}
        spec = parse_spec(doc)
        control = run_experiment(parse_spec(DOC))
        full = run_experiment(spec)
        # Drop the journal's last cell record: simulates a crash that
        # lost the in-flight cell.
        lines = journal.read_text().strip().splitlines()
        journal.write_text("\n".join(lines[:-1]) + "\n")
        resumed = run_experiment(spec)
        assert resumed.resumed == 3 and resumed.simulated == 1
        assert _agg(resumed) == _agg(full) == _agg(control)

    def test_foreign_journal_is_refused(self, tmp_path):
        journal = tmp_path / "other.journal"
        other = parse_spec({**DOC, "grid": {"apps": ["swim"], "policies": ["shared"]},
                            "journal": {"path": str(journal), "resume": True}})
        run_experiment(other)
        mine = parse_spec({**DOC, "journal": {"path": str(journal), "resume": True}})
        with pytest.raises(JournalMismatchError):
            run_experiment(mine)

    def test_cli_run_spec_journal_mismatch_exits_2(self, tmp_path, capsys):
        journal = tmp_path / "other.journal"
        foreign = parse_spec(DOC)
        SweepJournal.begin(journal, foreign.grid.grid_key()).close()
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            **DOC, "grid": {"apps": ["swim"], "policies": ["shared"]},
            "journal": {"path": str(journal), "resume": True},
        }))
        assert main(["run-spec", str(path)]) == 2
        assert "different sweep grid" in capsys.readouterr().err


class TestSmoke:
    def test_smoke_shrinks_every_axis(self):
        spec = parse_spec({
            "spec_version": 1,
            "grid": {"apps": ["ft", "cg", "swim"],
                     "policies": ["shared", "static-equal", "model-based"],
                     "seeds": [1, 2], "thread_counts": [4, 8]},
            "config": {"intervals": 50, "interval_instructions": 20000},
        })
        small = smoke_spec(spec).grid
        assert small.apps == ("ft",)
        assert small.policies == ("shared", "static-equal")
        assert small.seeds == (1,) and small.thread_counts == (4,)
        assert small.intervals <= 5 and small.interval_instructions <= 2000
        assert small.baseline in small.policies

    def test_smoke_run_uses_its_own_journal(self, tmp_path):
        journal = tmp_path / "full.journal"
        spec = parse_spec({**DOC, "journal": {"path": str(journal), "resume": True}})
        result = run_experiment(spec, smoke=True)
        assert not result.failures
        assert not journal.exists()
        assert (tmp_path / "full.journal.smoke").is_file()

    def test_cli_smoke_exits_0(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(DOC))
        assert main(["run-spec", str(path), "--smoke"]) == 0


class TestExpectations:
    def test_met_expectations_return_no_violations(self):
        spec = parse_spec({**DOC, "expectations": {"max_failures": 0}})
        assert check_expectations(spec, run_experiment(spec)) == []

    def test_failed_cells_violate_max_failures(self):
        doc = {
            **DOC,
            # Faults on every attempt exhaust the retry budget: all fail.
            "engine": {"max_retries": 0, "backoff_s": 0.0},
            "faults": {"seed": 3, "rules": [
                {"kind": "job-exception", "match": "*", "rate": 1.0, "attempts": [1]},
            ]},
        }
        spec = parse_spec(doc)
        result = run_experiment(spec)
        assert result.failures
        violations = check_expectations(spec, result)
        assert violations and violations[0].startswith("spec.expectations.max_failures:")

    def test_min_mean_speedup_floor_violation_names_policy_and_app(self):
        doc = {**DOC, "expectations": {"min_mean_speedup": {"static-equal": 10.0}}}
        spec = parse_spec(doc)
        violations = check_expectations(spec, run_experiment(spec))
        assert len(violations) == 2  # one per app
        assert all("min_mean_speedup.static-equal" in v for v in violations)
        assert any("ft" in v for v in violations)

    def test_cli_exits_1_on_unmet_expectations(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(
            {**DOC, "expectations": {"min_mean_speedup": {"static-equal": 10.0}}}
        ))
        assert main(["run-spec", str(path)]) == 1
        assert "expectation not met" in capsys.readouterr().err
        assert main(["run-spec", str(path), "--no-expectations"]) == 0
