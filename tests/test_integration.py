"""End-to-end integration tests.

These assert the paper's qualitative claims on small, strongly-shaped
scenarios rather than the full evaluation configuration (the benchmark
harness regenerates the full figures; tests need to be fast and robust).
"""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.sim.config import SystemConfig
from repro.sim.driver import run_application
from repro.trace.behavior import PhaseSegment, ThreadBehavior
from repro.trace.workloads import WorkloadProfile


def strong_profile() -> WorkloadProfile:
    """Two cache-hungry threads, a bursty polluter and a small donor —
    the role mix that produces the paper's effects."""
    return WorkloadProfile(
        name="integration-strong",
        suite="NAS",
        description="integration test profile",
        base_behaviors=(
            ThreadBehavior(ws_lines=130, skew=2.0, share_frac=0.05,
                           stream_frac=0.02, mem_ratio=0.42),
            ThreadBehavior(ws_lines=40, skew=2.2, share_frac=0.05,
                           stream_frac=0.05, mem_ratio=0.30),
            ThreadBehavior(ws_lines=24, skew=2.5, share_frac=0.05,
                           stream_frac=0.25, mem_ratio=0.32,
                           stream_burst=1.0, stream_stride_words=8),
            ThreadBehavior(ws_lines=40, skew=2.2, share_frac=0.05,
                           stream_frac=0.05, mem_ratio=0.30),
        ),
    )


@pytest.fixture(scope="module")
def cfg():
    return SystemConfig(
        n_threads=4,
        l2_geometry=CacheGeometry(sets=16, ways=16),  # 256 lines, share=64
        interval_instructions=8_000,
        n_intervals=16,
        sections_per_interval=2,
    )


@pytest.fixture(scope="module")
def results(cfg):
    profile = strong_profile()
    return {
        p: run_application(profile, p, cfg)
        for p in ("shared", "static-equal", "model-based", "cpi-proportional", "throughput")
    }


class TestHeadlineShape:
    def test_dynamic_beats_static_equal(self, results):
        """Paper Fig. 19: the dynamic scheme beats the private cache."""
        gain = results["model-based"].speedup_over(results["static-equal"])
        assert gain > 0.03, f"expected solid gain over static-equal, got {gain:+.1%}"

    def test_dynamic_competitive_with_shared(self, results):
        """Paper Fig. 20: the dynamic scheme beats (or at worst matches)
        the unpartitioned shared cache."""
        gain = results["model-based"].speedup_over(results["shared"])
        assert gain > -0.02, f"expected no loss vs shared, got {gain:+.1%}"

    def test_dynamic_feeds_critical_thread(self, results):
        """The final partition gives thread 0 (the big-footprint critical
        thread) the largest share."""
        final_targets = results["model-based"].intervals[-1].observation.targets
        assert final_targets[0] == max(final_targets)
        assert final_targets[0] > sum(final_targets) // 4

    def test_critical_thread_cpi_reduced_vs_static(self, results):
        crit_static = results["static-equal"].thread_cpi(0)
        crit_dyn = results["model-based"].thread_cpi(0)
        assert crit_dyn < crit_static

    def test_partitioning_reduces_inter_thread_evictions(self, results):
        shared_evictions = sum(results["shared"].l2_totals.inter_thread_evictions)
        dyn_evictions = sum(results["model-based"].l2_totals.inter_thread_evictions)
        assert dyn_evictions < shared_evictions

    def test_all_policies_execute_identical_work(self, results):
        ref = results["shared"]
        for r in results.values():
            assert r.thread_instructions == ref.thread_instructions
            assert r.thread_l1_accesses == ref.thread_l1_accesses

    def test_interval_records_complete(self, results, cfg):
        for r in results.values():
            assert len(r.intervals) >= cfg.n_intervals - 1
            for rec in r.intervals:
                assert sum(rec.observation.targets) == cfg.total_ways

    def test_barrier_log_consistency(self, results, cfg):
        for r in results.values():
            expected_sections = cfg.n_intervals * cfg.sections_per_interval
            assert len(r.barriers.events) == expected_sections
            # Slack totals from the log match the run's stall accounting.
            log_slack = r.barriers.total_slack_per_thread()
            for t in range(cfg.n_threads):
                assert log_slack[t] == pytest.approx(r.thread_stall_cycles[t])

    def test_wall_clock_bounded_by_busy_plus_stall(self, results):
        for r in results.values():
            for t in range(r.n_threads):
                assert (
                    r.thread_busy_cycles[t] + r.thread_stall_cycles[t]
                    <= r.total_cycles * (1 + 1e-9)
                )


class TestPhaseAdaptation:
    def test_partition_tracks_phase_change(self, cfg):
        """When the big thread's footprint migrates to another thread
        between phases, the dynamic partition must follow."""
        profile = WorkloadProfile(
            name="integration-phases",
            suite="NAS",
            description="phase flip",
            base_behaviors=(
                ThreadBehavior(ws_lines=120, skew=2.0, mem_ratio=0.42,
                               share_frac=0.05, stream_frac=0.02),
                ThreadBehavior(ws_lines=30, skew=2.0, mem_ratio=0.42,
                               share_frac=0.05, stream_frac=0.02),
                ThreadBehavior(ws_lines=24, skew=2.5, mem_ratio=0.3,
                               share_frac=0.05, stream_frac=0.05),
                ThreadBehavior(ws_lines=24, skew=2.5, mem_ratio=0.3,
                               share_frac=0.05, stream_frac=0.05),
            ),
            phases=(
                PhaseSegment(intervals=8, ws_scales=(1.0, 1.0, 1.0, 1.0)),
                PhaseSegment(intervals=8, ws_scales=(0.25, 4.0, 1.0, 1.0)),
            ),
        )
        r = run_application(profile, "model-based", cfg)
        first_phase = r.intervals[6].observation.targets
        second_phase = r.intervals[-1].observation.targets
        assert first_phase[0] > first_phase[1]
        # After the flip, capacity flows from thread 0 to thread 1.  The
        # shift is substantial but damped: the model bank's cells for way
        # counts visited only during the old phase go stale and brake the
        # transfer (a known property of the interval-EWMA design).
        assert second_phase[1] >= first_phase[1] + 3
        assert second_phase[0] <= first_phase[0] - 3
