"""Chaos suite: kill a sweep mid-flight, resume it, and demand the exact
result an uninterrupted run produces.

These tests drive the real CLI in subprocesses (a SIGKILL cannot be
simulated in-process) and pin the crash-safety contract from
``repro.exec.sweep``: ``SweepResult.aggregates()`` is byte-identical
between an uninterrupted sweep and a kill/resume of the same grid — under
the serial and pool engines, with and without injected faults — and a
resume recomputes nothing the journal already holds.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")

# Aggregate keys that must survive a kill/resume byte-for-byte (wall_s,
# simulated, store_hits, resumed legitimately differ across a resume).
AGG_KEYS = (
    "apps",
    "policies",
    "seeds",
    "thread_counts",
    "baseline",
    "n_failures",
    "baseline_missing",
    "cells",
    "mean_speedups",
)

# Every cell fails its first attempt and succeeds on retry — deterministic,
# so the control and the kill/resume runs inject identically.
FAULT_PLAN = '{"seed": 7, "rules": [{"kind": "job-exception", "match": "*", "attempts": [1]}]}'


def _sweep_argv(journal: Path | None, *, jobs: int, faults: bool, resume: bool = False):
    argv = [
        sys.executable,
        "-m",
        "repro",
        "sweep",
        "--apps",
        "ft",
        "cg",
        "--policies",
        "shared",
        "static-equal",
        "--intervals",
        "30",
        "--interval-instructions",
        "8000",
        "--jobs",
        str(jobs),
        "--json",
    ]
    if journal is not None:
        argv += ["--journal", str(journal)]
    if faults:
        argv += ["--faults", FAULT_PLAN]
    if resume:
        argv += ["--resume"]
    return argv


def _env():
    env = os.environ.copy()
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC if not existing else SRC + os.pathsep + existing
    return env


def _run_cli(argv) -> dict:
    proc = subprocess.run(argv, capture_output=True, text=True, env=_env(), timeout=300)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def _journal_cells(path: Path) -> int:
    if not path.is_file():
        return 0
    try:
        return path.read_text(encoding="utf-8").count('"kind":"cell"')
    except OSError:
        return 0


def _kill_after_cells(argv, journal: Path, n_cells: int, sig=signal.SIGKILL) -> subprocess.Popen:
    """Start the sweep and deliver ``sig`` once ``n_cells`` outcomes are
    durably journaled (i.e. genuinely mid-flight)."""
    proc = subprocess.Popen(
        argv, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True, env=_env()
    )
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        if _journal_cells(journal) >= n_cells:
            proc.send_signal(sig)
            break
        if proc.poll() is not None:  # finished before we could interrupt it
            break
        time.sleep(0.005)
    proc.wait(timeout=60)
    return proc


@pytest.mark.parametrize("jobs", [1, 2], ids=["serial", "pool"])
@pytest.mark.parametrize("faults", [False, True], ids=["clean", "faulty"])
def test_sigkill_then_resume_matches_uninterrupted(tmp_path, jobs, faults):
    control = _run_cli(_sweep_argv(None, jobs=jobs, faults=faults))
    assert control["n_failures"] == 0

    journal = tmp_path / "sweep.jsonl"
    victim = _kill_after_cells(
        _sweep_argv(journal, jobs=jobs, faults=faults), journal, n_cells=2
    )
    assert victim.returncode == -signal.SIGKILL, (
        f"sweep finished (rc={victim.returncode}) before the kill landed — "
        "the grid is too fast for a mid-flight SIGKILL; raise --intervals"
    )
    completed = _journal_cells(journal)
    assert 1 <= completed < 4, "the kill must land mid-sweep"

    resumed = _run_cli(_sweep_argv(journal, jobs=jobs, faults=faults, resume=True))
    # Zero recomputation of journaled cells...
    assert resumed["resumed"] == completed
    assert resumed["simulated"] == 4 - completed
    assert resumed["store_hits"] == 0
    # ...and byte-identical aggregates vs the uninterrupted control.
    for key in AGG_KEYS:
        assert json.dumps(resumed[key], sort_keys=True) == json.dumps(
            control[key], sort_keys=True
        ), f"aggregate {key!r} diverged across kill/resume"


def test_sigint_flushes_journal_and_exits_130(tmp_path):
    journal = tmp_path / "sweep.jsonl"
    victim = _kill_after_cells(
        _sweep_argv(journal, jobs=1, faults=False), journal, n_cells=1, sig=signal.SIGINT
    )
    assert victim.returncode == 130, victim.stderr.read() if victim.stderr else ""
    stderr = victim.stderr.read()
    assert "interrupted by SIGINT" in stderr
    assert "--resume" in stderr
    completed = _journal_cells(journal)
    assert completed >= 1

    resumed = _run_cli(_sweep_argv(journal, jobs=1, faults=False, resume=True))
    assert resumed["resumed"] == completed
    assert resumed["n_failures"] == 0


def test_sigterm_is_handled_like_sigint(tmp_path):
    journal = tmp_path / "sweep.jsonl"
    victim = _kill_after_cells(
        _sweep_argv(journal, jobs=1, faults=False), journal, n_cells=1, sig=signal.SIGTERM
    )
    assert victim.returncode == 130
    assert "interrupted by SIGTERM" in victim.stderr.read()
    assert _run_cli(_sweep_argv(journal, jobs=1, faults=False, resume=True))["n_failures"] == 0


# ----------------------------------------------------------------------
# Service chaos: SIGTERM a loaded `repro serve`, demand a clean drain
# (exit 0), a resumable journal, and byte-identical aggregates after the
# next incarnation finishes the sweep.
# ----------------------------------------------------------------------

SERVE_GRID = {
    "apps": ["ft", "cg"],
    "policies": ["shared", "static-equal"],
    "intervals": 30,
    "interval_instructions": 8000,
}


def _start_serve(tmp_path: Path, data_dir: Path) -> tuple[subprocess.Popen, int]:
    """Launch `repro serve` on a free port; returns (process, port)."""
    port_file = tmp_path / f"port-{os.urandom(4).hex()}"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--port-file", str(port_file),
            "--data-dir", str(data_dir), "--batch-size", "1",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=_env(),
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if port_file.is_file() and port_file.read_text().strip():
            return proc, int(port_file.read_text().strip())
        if proc.poll() is not None:
            raise AssertionError(f"serve died at startup: {proc.stdout.read()}")
        time.sleep(0.02)
    proc.kill()
    raise AssertionError("serve did not write its port file in time")


def test_serve_sigterm_under_load_drains_cleanly_then_resumes(tmp_path):
    from repro.serve.client import ServeClient
    from repro.serve.protocol import SweepRequest

    data_dir = tmp_path / "serve-data"
    sweep_id = SweepRequest.from_dict(SERVE_GRID).sweep_id
    journal = data_dir / "journals" / f"{sweep_id}.jsonl"

    proc, port = _start_serve(tmp_path, data_dir)
    try:
        submission = ServeClient(port=port).submit(SERVE_GRID)
        assert submission["sweep_id"] == sweep_id
        # SIGTERM once at least one cell is durably journaled — mid-sweep.
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if _journal_cells(journal) >= 1:
                proc.send_signal(signal.SIGTERM)
                break
            time.sleep(0.005)
        proc.wait(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
    output = proc.stdout.read()
    # The drain contract: exit 0 (not 130 — nothing was lost, the service
    # finished its in-flight batch and released the rest for resume).
    assert proc.returncode == 0, output
    assert "draining (SIGTERM)" in output and "drained cleanly" in output

    completed = _journal_cells(journal)
    assert 1 <= completed < 4, "the SIGTERM must land mid-sweep"
    # Crash-safety invariant: the journal ends on a record boundary.
    assert journal.read_bytes().endswith(b"\n")

    # Next incarnation, same data dir: the sweep resumes from the journal
    # and completes without recomputing the journaled cells.
    proc, port = _start_serve(tmp_path, data_dir)
    try:
        final = ServeClient(port=port).run({**SERVE_GRID, "client": "resumer"})
        assert final["status"] == "done"
        assert final["resumed"] == completed
        assert final["executed"] == 4 - completed
    finally:
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=120)
    assert proc.returncode == 0

    # Byte-identity across the kill: the service's aggregates equal an
    # uninterrupted `repro sweep` of the same grid.
    control = _run_cli(
        [
            sys.executable, "-m", "repro", "sweep",
            "--apps", *SERVE_GRID["apps"],
            "--policies", *SERVE_GRID["policies"],
            "--intervals", str(SERVE_GRID["intervals"]),
            "--interval-instructions", str(SERVE_GRID["interval_instructions"]),
            "--jobs", "1", "--json",
        ]
    )
    for key in AGG_KEYS:
        assert json.dumps(final["result"][key], sort_keys=True) == json.dumps(
            control[key], sort_keys=True
        ), f"aggregate {key!r} diverged across the service kill/resume"


def test_serve_idle_sigterm_exits_zero_immediately(tmp_path):
    proc, _port = _start_serve(tmp_path, tmp_path / "serve-data")
    proc.send_signal(signal.SIGTERM)
    proc.wait(timeout=60)
    assert proc.returncode == 0
    assert "drained cleanly" in proc.stdout.read()
