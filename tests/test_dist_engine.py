"""Tests for RemoteEngine and friends: byte-identity with the serial
engine (clean, under network chaos, under worker death), degradation,
the store proxy, and prep-bundle fetching.

Workers run in-process (``WorkerServer.start()`` threads): same wire,
same frames, no subprocess management — and an injected ``worker-vanish``
closes the worker's sockets instead of killing the test process.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.dist import ProxyBackend, RemoteEngine, StoreProxyServer, WorkerServer, codec
from repro.exec.backend import MemoryBackend
from repro.exec.engine import SerialEngine, execute_job
from repro.exec.faults import FaultPlan, FaultRule, set_fault_plan
from repro.exec.store import ResultStore
from repro.exec.sweep import run_sweep
from repro.obs import METRICS
from repro.sim.config import SystemConfig

APPS = ["ft", "cg"]
POLICIES = ["shared", "static-equal"]
CONFIG = SystemConfig.default().with_(n_intervals=6, interval_instructions=4000)


def _aggregates(engine) -> tuple[dict, str]:
    """Run the reference grid on ``engine``; (result dict, canonical JSON)."""
    result = run_sweep(APPS, POLICIES, config=CONFIG, engine=engine)
    agg = result.aggregates()
    return result, json.dumps(agg, sort_keys=True)


@pytest.fixture
def fleet():
    """Two in-process workers; yields the RemoteEngine pointed at them."""
    workers = [WorkerServer().start(), WorkerServer().start()]
    try:
        yield RemoteEngine([w.address for w in workers]), workers
    finally:
        for w in workers:
            w.stop()


class TestRemoteByteIdentity:
    def test_clean_remote_matches_serial(self, fleet):
        engine, workers = fleet
        serial_result, serial_agg = _aggregates(SerialEngine())
        remote_result, remote_agg = _aggregates(engine)
        assert remote_agg == serial_agg
        assert remote_result.engine == "remote"
        # Both workers actually participated.
        assert sum(w.jobs_run for w in workers) == len(APPS) * len(POLICIES)
        assert all(w.jobs_run > 0 for w in workers)
        assert engine.registry.joined == 2

    def test_network_chaos_matches_serial(self, fleet):
        """Conn drops, partitions, slow links and a job exception: jobs
        retry across the fleet, aggregates stay byte-identical (the jobs
        all eventually succeed, and error-free cells carry no attempt or
        engine fields)."""
        engine, _workers = fleet
        plan = FaultPlan(
            seed=7,
            rules=(
                FaultRule(kind="conn-drop", match="ft/*", attempts=(1,)),
                FaultRule(kind="partition", match="cg/shared", attempts=(1,)),
                FaultRule(kind="slow-link", match="*", attempts=(1,), delay_s=0.01),
                FaultRule(kind="job-exception", match="cg/static-equal", attempts=(1,)),
            ),
        )
        set_fault_plan(plan)
        _, serial_agg = _aggregates(SerialEngine())
        set_fault_plan(plan)  # the serial sweep's workers reset nothing
        _, remote_agg = _aggregates(engine)
        assert remote_agg == serial_agg
        counters = METRICS.snapshot()["counters"]
        assert counters["faults.injected.conn-drop"] >= 1
        assert counters["faults.injected.partition"] >= 1

    def test_single_worker_vanish_redistributes(self, fleet):
        """One worker dying mid-batch loses no jobs: its in-flight job is
        requeued for the survivor and the sweep stays byte-identical."""
        engine, _workers = fleet
        _, serial_agg = _aggregates(SerialEngine())
        set_fault_plan(
            FaultPlan(rules=(FaultRule(kind="worker-vanish", match="ft/shared", attempts=(1,)),))
        )
        result, remote_agg = _aggregates(engine)
        assert remote_agg == serial_agg
        assert not result.failures
        assert engine.registry.lost == 1
        assert engine.degraded_reasons == []  # the survivor finished the batch

    def test_all_workers_lost_degrades_to_serial(self, fleet):
        """The batch still completes — loudly — when the whole fleet dies."""
        engine, _workers = fleet
        _, serial_agg = _aggregates(SerialEngine())
        set_fault_plan(
            FaultPlan(rules=(FaultRule(kind="worker-vanish", match="*", attempts=(1, 2, 3)),))
        )
        result, remote_agg = _aggregates(engine)
        assert remote_agg == serial_agg
        assert not result.failures
        assert engine.degraded_reasons and "all workers lost" in engine.degraded_reasons[0]
        assert METRICS.snapshot()["counters"]["exec.degraded_to_serial"] == 1

    def test_failing_job_reports_identical_error_string(self, fleet):
        """A job that fails every attempt must produce the same outcome
        error remotely as serially — error strings are part of the
        aggregate surface."""
        engine, _workers = fleet
        plan = FaultPlan(
            rules=(FaultRule(kind="job-exception", match="ft/shared"),)  # every attempt
        )
        set_fault_plan(plan)
        serial_result, serial_agg = _aggregates(SerialEngine())
        set_fault_plan(plan)
        remote_result, remote_agg = _aggregates(engine)
        assert serial_result.failures and remote_result.failures
        assert remote_agg == serial_agg


class TestRemoteEngineBasics:
    def test_needs_at_least_one_worker(self):
        with pytest.raises(ValueError, match="at least one worker"):
            RemoteEngine([])

    def test_empty_batch_is_a_noop(self, fleet):
        engine, _ = fleet
        assert engine.run([]) == []

    def test_jobs_reflects_fleet_size(self, fleet):
        engine, _ = fleet
        assert engine.jobs == 2

    def test_unreachable_fleet_degrades_not_raises(self):
        engine = RemoteEngine(
            ["127.0.0.1:1", "127.0.0.1:2"], connect_timeout_s=0.5
        )
        result = run_sweep(["ft"], ["shared"], config=CONFIG, engine=engine)
        assert not result.failures
        assert engine.degraded_reasons


class TestMixedEngineJournalResume:
    def test_serial_cells_resume_under_remote_engine(self, tmp_path, fleet):
        """A sweep journaled by the serial engine, interrupted, then
        resumed on a worker fleet: journaled cells restore verbatim and
        the final aggregates are byte-identical to an uninterrupted
        serial run."""
        engine, _workers = fleet
        _, reference_agg = _aggregates(SerialEngine())

        ran = []

        def interrupting_runner(spec):
            if len(ran) >= 2:
                raise KeyboardInterrupt
            ran.append(spec.label)
            return execute_job(spec)

        journal = tmp_path / "sweep.jsonl"
        with pytest.raises(KeyboardInterrupt):
            run_sweep(
                APPS,
                POLICIES,
                config=CONFIG,
                engine=SerialEngine(job_runner=interrupting_runner),
                journal=journal,
            )
        assert len(ran) == 2  # two cells journaled before the interrupt

        resumed = run_sweep(
            APPS, POLICIES, config=CONFIG, engine=engine, journal=journal, resume=True
        )
        assert resumed.resumed == 2
        assert json.dumps(resumed.aggregates(), sort_keys=True) == reference_agg


class TestStoreProxy:
    def test_resultstore_over_proxy_roundtrip(self, tmp_path):
        from repro.exec.jobs import JobSpec
        from repro.sim.driver import run_application

        with StoreProxyServer(MemoryBackend()).start() as server:
            store = ResultStore(tmp_path, backend=ProxyBackend(server.address))
            spec = JobSpec(app="swim", policy="shared", config=CONFIG)
            assert store.get(spec) is None
            result = run_application(spec.app, spec.policy, CONFIG)
            store.put(spec, result)
            cached = store.get(spec)
            assert cached is not None and cached.total_cycles == result.total_cycles
            assert len(store) == 1
            store.clear()
            assert len(store) == 0

    def test_traversal_keys_are_refused_remotely(self):
        with StoreProxyServer(MemoryBackend()).start() as server:
            proxy = ProxyBackend(server.address)
            with pytest.raises(OSError, match="store proxy refused"):
                proxy.write("../escape", b"x")
            proxy.close()

    def test_unreachable_server_raises_oserror_on_read(self):
        proxy = ProxyBackend(("127.0.0.1", 1), timeout_s=0.5)
        with pytest.raises(OSError):
            proxy.read("v1/ab/x.json")
        # Delete and sweep swallow link errors (eviction is best-effort).
        assert proxy.delete("v1/ab/x.json") is False
        assert proxy.sweep_stale("", 0.0) == 0


class TestPrepFetch:
    def _stock_store(self, root):
        from repro.prep.store import PrepStore

        store = PrepStore(root)
        key = {"kind": "test-bundle", "n": 1}
        store.put(key, {"x": np.arange(5, dtype=np.float64)}, {"note": "hi"})
        return store, key

    def test_miss_fetches_verifies_and_caches(self, tmp_path):
        from repro.prep.store import PrepStore

        src, key = self._stock_store(tmp_path / "src")
        bundle = src.get(key)
        dst = PrepStore(tmp_path / "dst")
        calls = []

        def fetcher(k):
            calls.append(k)
            return codec.encode_prep_bundle(bundle.meta, dict(bundle.arrays))

        dst.fetcher = fetcher
        got = dst.get(key)
        assert got is not None
        np.testing.assert_array_equal(got.arrays["x"], bundle.arrays["x"])
        assert calls == [key]
        assert dst.stats()["fetched"] == 1
        dst.get(key)  # now a local hit
        assert len(calls) == 1

    def test_poisoned_bundle_is_rejected_not_cached(self, tmp_path):
        from repro.prep.store import PrepStore

        src, key = self._stock_store(tmp_path / "src")
        bundle = src.get(key)

        def poisoned_fetcher(k):
            payload = codec.encode_prep_bundle(bundle.meta, dict(bundle.arrays))
            payload["arrays"]["x"]["sha256"] = "0" * 64
            return payload

        dst = PrepStore(tmp_path / "dst")
        dst.fetcher = poisoned_fetcher
        assert dst.get(key) is None
        assert METRICS.snapshot()["counters"]["prep.fetch_rejected"] == 1
        dst.fetcher = None
        assert dst.get(key) is None  # nothing was cached


class TestWorkerCli:
    def test_ping_a_live_worker(self, capsys):
        from repro.__main__ import main

        with WorkerServer(worker_id="pingme") as server:
            server.start()
            host, port = server.address
            assert main(["worker", "--ping", f"{host}:{port}"]) == 0
        out = capsys.readouterr().out
        assert "alive" in out and "pingme" in out

    def test_ping_a_dead_address(self, capsys):
        from repro.__main__ import main

        assert main(["worker", "--ping", "127.0.0.1:1"]) == 1
        assert "unreachable" in capsys.readouterr().err

    def test_remote_engine_requires_workers(self, capsys):
        from repro.__main__ import main

        code = main(["sweep", "--apps", "ft", "--engine", "remote"])
        assert code == 2
        assert "--workers" in capsys.readouterr().err
