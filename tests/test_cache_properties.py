"""Property-based invariants of the partitioned shared cache.

Hypothesis drives randomised access/repartition schedules against both
L2 backends and checks the properties the paper's Section V mechanism
guarantees by construction:

* structural consistency (``check_invariants``) holds after every
  operation sequence,
* per-thread occupancy never exceeds capacity and sums to the filled
  line count,
* accounting identities: hits + misses == accesses,
  intra + inter hits == hits, evictions <= misses,
* a cache never reports more lines for a thread than it has accessed
  distinct line addresses,
* the backends agree hit-for-hit on arbitrary schedules (the
  property-based twin of tests/test_cache_differential.py).

Each example is small (a few hundred events on a tiny geometry) so
shrinking produces readable counterexamples.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheGeometry, FastPartitionedSharedCache, PartitionedSharedCache

N_THREADS = 3
GEOMETRY = CacheGeometry(sets=4, ways=4)


def _partitions(total_ways: int) -> st.SearchStrategy[list[int]]:
    """Random way partitions: non-negative integers summing to the total."""

    def to_partition(cuts: list[int]) -> list[int]:
        bounds = [0, *sorted(cuts), total_ways]
        return [b - a for a, b in zip(bounds, bounds[1:])]

    return st.lists(
        st.integers(0, total_ways), min_size=N_THREADS - 1, max_size=N_THREADS - 1
    ).map(to_partition)


#: One schedule event: an access (thread, address) or a repartition.
_events = st.lists(
    st.one_of(
        st.tuples(st.integers(0, N_THREADS - 1), st.integers(0, 1 << 12)),
        _partitions(GEOMETRY.ways),
    ),
    max_size=300,
)


def _drive(cache, events) -> list[bool | None]:
    outcomes = []
    for event in events:
        if isinstance(event, tuple):
            outcomes.append(cache.access(*event))
        else:
            cache.set_targets(event)
            outcomes.append(None)
    return outcomes


@settings(max_examples=60, deadline=None)
@given(events=_events, enforce=st.booleans())
def test_invariants_hold_under_any_schedule(events, enforce):
    cache = FastPartitionedSharedCache(GEOMETRY, N_THREADS, enforce_partition=enforce)
    for event in events:
        if isinstance(event, tuple):
            cache.access(*event)
        else:
            cache.set_targets(event)
        cache.check_invariants()


@settings(max_examples=60, deadline=None)
@given(events=_events, enforce=st.booleans())
def test_occupancy_and_stats_identities(events, enforce):
    cache = FastPartitionedSharedCache(GEOMETRY, N_THREADS, enforce_partition=enforce)
    touched = [set() for _ in range(N_THREADS)]
    for event in events:
        if isinstance(event, tuple):
            thread, addr = event
            cache.access(thread, addr)
            touched[thread].add(addr >> GEOMETRY.offset_bits)
        else:
            cache.set_targets(event)

    occ = cache.occupancy()
    stats = cache.stats
    capacity = GEOMETRY.sets * GEOMETRY.ways
    assert all(o >= 0 for o in occ)
    assert sum(occ) <= capacity
    assert sum(occ) == sum(cache._filled)
    for t in range(N_THREADS):
        assert stats.hits[t] + stats.misses[t] == stats.accesses[t]
        assert stats.intra_thread_hits[t] + stats.inter_thread_hits[t] == stats.hits[t]
        assert stats.evictions[t] <= stats.misses[t]
        # A thread owns at most as many lines as distinct lines it filled.
        assert occ[t] <= len(touched[t])


@settings(max_examples=60, deadline=None)
@given(events=_events)
def test_enforced_partition_converges_toward_targets(events):
    """After repartitioning, over-target threads never *gain* lines.

    The mechanism is gradual (Section V): it only steals on misses, so a
    freshly shrunk thread may sit over target for a while, but an access
    by an under-target thread must never increase an over-target
    thread's occupancy.
    """
    cache = FastPartitionedSharedCache(GEOMETRY, N_THREADS, enforce_partition=True)
    for event in events:
        if not isinstance(event, tuple):
            cache.set_targets(event)
            continue
        thread, addr = event
        before = cache.occupancy()
        cache.access(thread, addr)
        after = cache.occupancy()
        for t in range(N_THREADS):
            if t != thread and before[t] > cache.targets[t]:
                assert after[t] <= before[t], (
                    f"over-target thread {t} grew from {before[t]} to {after[t]}"
                )


@settings(max_examples=60, deadline=None)
@given(events=_events)
def test_eviction_control_protects_under_target_threads(events):
    """Section V eviction control: an under-target thread's line is never
    evicted while some over-target thread still holds lines in the set.

    The victim scan prefers over-target owners and falls back to the
    requester's own lines, so the only way an under-target thread loses
    a line is when nobody in the set is over target (or the requester is
    evicting from itself).
    """
    cache = FastPartitionedSharedCache(GEOMETRY, N_THREADS, enforce_partition=True)
    sets = GEOMETRY.sets
    for event in events:
        if not isinstance(event, tuple):
            cache.set_targets(event)
            continue
        thread, addr = event
        line = addr >> GEOMETRY.offset_bits
        s = line & (sets - 1)
        before = cache.set_occupancy(s)
        targets = list(cache.targets)
        hit = cache.access(thread, addr)
        after = cache.set_occupancy(s)
        if hit:
            continue
        over_target = [t for t in range(N_THREADS) if before[t] > targets[t]]
        for t in range(N_THREADS):
            if after[t] < before[t]:  # t lost a line to this fill
                assert t == thread or before[t] > targets[t] or not over_target, (
                    f"under-target thread {t} (held {before[t]}, target "
                    f"{targets[t]}) evicted while {over_target} were over target"
                )


@settings(max_examples=60, deadline=None)
@given(events=_events, enforce=st.booleans(), prober=st.integers(0, N_THREADS - 1))
def test_any_thread_hits_any_resident_line(events, enforce, prober):
    """Partitioning controls *replacement*, never *visibility*: every
    resident line is a hit for every thread (cross-partition hits are
    what distinguish this scheme from private caches)."""
    cache = FastPartitionedSharedCache(GEOMETRY, N_THREADS, enforce_partition=enforce)
    resident: dict[int, int] = {}  # line -> last address that mapped to it
    for event in events:
        if isinstance(event, tuple):
            thread, addr = event
            cache.access(thread, addr)
            resident[addr >> GEOMETRY.offset_bits] = addr
        else:
            cache.set_targets(event)
    still_there = [
        addr for line, addr in resident.items() if line in cache._lines
    ]
    for addr in still_there[:8]:
        assert cache.access(prober, addr), (
            f"thread {prober} missed resident address {addr:#x}"
        )


@settings(max_examples=60, deadline=None)
@given(events=_events, enforce=st.booleans())
def test_backends_agree_on_arbitrary_schedules(events, enforce):
    ref = PartitionedSharedCache(GEOMETRY, N_THREADS, enforce_partition=enforce)
    fast = FastPartitionedSharedCache(GEOMETRY, N_THREADS, enforce_partition=enforce)
    assert _drive(ref, events) == _drive(fast, events)
    assert ref.stats.snapshot() == fast.stats.snapshot()
    assert ref.occupancy() == fast.occupancy()
    assert ref.partition_distance() == fast.partition_distance()
    fast.check_invariants()


@settings(max_examples=30, deadline=None)
@given(events=_events, enforce=st.booleans())
def test_flush_resets_contents_but_not_stats(events, enforce):
    cache = FastPartitionedSharedCache(GEOMETRY, N_THREADS, enforce_partition=enforce)
    _drive(cache, events)
    snap = cache.stats.snapshot()
    cache.flush()
    cache.check_invariants()
    assert cache.occupancy() == [0] * N_THREADS
    assert cache.stats.snapshot() == snap
