"""Tests for thread behaviours and phase schedules."""

import pytest

from repro.trace.behavior import PhaseSegment, ThreadBehavior, behavior_schedule


class TestThreadBehavior:
    def test_defaults_valid(self):
        b = ThreadBehavior(ws_lines=100)
        assert b.ws_lines == 100

    def test_invalid_ws(self):
        with pytest.raises(ValueError):
            ThreadBehavior(ws_lines=0)

    def test_invalid_mem_ratio(self):
        with pytest.raises(ValueError):
            ThreadBehavior(ws_lines=10, mem_ratio=0.0)
        with pytest.raises(ValueError):
            ThreadBehavior(ws_lines=10, mem_ratio=1.5)

    def test_invalid_skew(self):
        with pytest.raises(ValueError):
            ThreadBehavior(ws_lines=10, skew=0.5)

    def test_fractions_must_fit(self):
        with pytest.raises(ValueError):
            ThreadBehavior(ws_lines=10, share_frac=0.7, stream_frac=0.5)

    def test_invalid_burst(self):
        with pytest.raises(ValueError):
            ThreadBehavior(ws_lines=10, stream_burst=1.5)

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            ThreadBehavior(ws_lines=10, stream_stride_words=0)

    def test_scaled_ws(self):
        b = ThreadBehavior(ws_lines=100, mem_ratio=0.4)
        s = b.scaled(ws_scale=1.5)
        assert s.ws_lines == 150
        assert s.mem_ratio == pytest.approx(0.4)

    def test_scaled_mem_clamped(self):
        b = ThreadBehavior(ws_lines=100, mem_ratio=0.8)
        assert b.scaled(mem_scale=2.0).mem_ratio == 1.0
        assert b.scaled(mem_scale=0.001).mem_ratio == pytest.approx(0.01)

    def test_scaled_ws_floor_one(self):
        b = ThreadBehavior(ws_lines=2)
        assert b.scaled(ws_scale=0.01).ws_lines == 1

    def test_frozen(self):
        b = ThreadBehavior(ws_lines=10)
        with pytest.raises(AttributeError):
            b.ws_lines = 20  # type: ignore[misc]


class TestPhaseSegment:
    def test_behavior_for_tiles_scales(self):
        seg = PhaseSegment(intervals=2, ws_scales=(1.0, 2.0))
        b = ThreadBehavior(ws_lines=100)
        assert seg.behavior_for(b, 0).ws_lines == 100
        assert seg.behavior_for(b, 1).ws_lines == 200
        assert seg.behavior_for(b, 2).ws_lines == 100  # tiled

    def test_invalid_intervals(self):
        with pytest.raises(ValueError):
            PhaseSegment(intervals=0)

    def test_empty_scales_rejected(self):
        with pytest.raises(ValueError):
            PhaseSegment(intervals=1, ws_scales=())


class TestBehaviorSchedule:
    def test_no_phases_means_steady(self):
        base = [ThreadBehavior(ws_lines=100), ThreadBehavior(ws_lines=200)]
        sched = behavior_schedule(base, [], 5)
        assert len(sched) == 5
        assert all(row[0].ws_lines == 100 and row[1].ws_lines == 200 for row in sched)

    def test_phases_cycle(self):
        base = [ThreadBehavior(ws_lines=100)]
        phases = [
            PhaseSegment(intervals=2, ws_scales=(1.0,)),
            PhaseSegment(intervals=1, ws_scales=(2.0,)),
        ]
        sched = behavior_schedule(base, phases, 7)
        ws = [row[0].ws_lines for row in sched]
        assert ws == [100, 100, 200, 100, 100, 200, 100]

    def test_schedule_shape(self):
        base = [ThreadBehavior(ws_lines=10)] * 3
        sched = behavior_schedule(base, [PhaseSegment(intervals=4)], 6)
        assert len(sched) == 6
        assert all(len(row) == 3 for row in sched)

    def test_empty_base_rejected(self):
        with pytest.raises(ValueError):
            behavior_schedule([], [], 5)

    def test_zero_intervals_rejected(self):
        with pytest.raises(ValueError):
            behavior_schedule([ThreadBehavior(ws_lines=10)], [], 0)
