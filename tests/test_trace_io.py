"""Tests for program trace import/export."""

import numpy as np
import pytest

from repro.trace.builder import build_program
from repro.trace.io import load_program, save_program
from repro.trace.workloads import get_workload


@pytest.fixture
def program():
    return build_program(
        get_workload("cg"), n_threads=2, n_intervals=2,
        interval_instructions=1500, sections_per_interval=2, seed=7,
    )


class TestRoundTrip:
    def test_exact_roundtrip(self, program, tmp_path):
        p = tmp_path / "prog.npz"
        save_program(program, p)
        loaded = load_program(p)
        assert loaded.name == program.name
        assert loaded.n_threads == program.n_threads
        assert len(loaded.sections) == len(program.sections)
        for s1, s2 in zip(program.sections, loaded.sections, strict=True):
            for w1, w2 in zip(s1.works, s2.works, strict=True):
                assert np.array_equal(w1.addrs, w2.addrs)
                assert np.array_equal(w1.gaps, w2.gaps)

    def test_meta_preserved(self, program, tmp_path):
        p = tmp_path / "prog.npz"
        save_program(program, p)
        assert load_program(p).meta["seed"] == 7

    def test_loaded_program_simulates_identically(self, program, tmp_path):
        from repro.cache.shared import PartitionedSharedCache
        from repro.cpu.engine import CMPEngine
        from repro.cpu.streams import compile_program
        from repro.sim.config import SystemConfig

        cfg = SystemConfig.quick(n_threads=2)
        p = tmp_path / "prog.npz"
        save_program(program, p)
        loaded = load_program(p)

        def run(prog):
            compiled = compile_program(prog, cfg.l1_geometry, cfg.timing)
            l2 = PartitionedSharedCache(cfg.l2_geometry, 2, enforce_partition=False)
            return CMPEngine(compiled, l2, cfg.timing, None,
                             interval_instructions=cfg.interval_instructions).run()

        assert run(program).total_cycles == run(loaded).total_cycles

    def test_not_a_program_file(self, tmp_path):
        p = tmp_path / "junk.npz"
        np.savez(p, stuff=np.zeros(3))
        with pytest.raises(ValueError, match="missing header"):
            load_program(p)

    def test_version_mismatch(self, program, tmp_path):
        import json

        p = tmp_path / "prog.npz"
        save_program(program, p)
        # Corrupt the version field.
        data = dict(np.load(p))
        header = json.loads(bytes(data["__header__"].tobytes()).decode())
        header["format_version"] = 999
        data["__header__"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
        np.savez(p, **data)
        with pytest.raises(ValueError, match="version"):
            load_program(p)
