"""Tests for the shape-preserving PCHIP interpolant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.interpolate import PchipInterpolator

from repro.mathx.pchip import PchipSpline1D


class TestPchip:
    def test_passes_through_knots(self):
        x = np.array([1.0, 4.0, 6.0, 8.0])
        y = np.array([6.0, 6.0, 3.5, 3.5])
        p = PchipSpline1D(x, y)
        assert np.allclose(p(x), y)

    def test_matches_scipy_inside_range(self):
        x = np.array([1.0, 3.0, 4.0, 7.0, 10.0])
        y = np.array([9.0, 5.0, 4.5, 2.0, 1.8])
        ours = PchipSpline1D(x, y)
        ref = PchipInterpolator(x, y)
        q = np.linspace(1.0, 10.0, 73)
        assert np.allclose(ours(q), ref(q), atol=1e-9)

    def test_no_overshoot_between_monotone_knots(self):
        """The property the natural spline lacks: monotone data give a
        monotone interpolant, even across flat-to-steep transitions."""
        x = np.array([1.0, 4.0, 6.0, 8.0])
        y = np.array([6.05, 6.05, 3.55, 3.55])  # PAVA-pooled shape
        p = PchipSpline1D(x, y)
        q = np.linspace(1.0, 8.0, 200)
        vals = p(q)
        assert np.all(np.diff(vals) <= 1e-9)
        assert vals.max() <= 6.05 + 1e-9
        assert vals.min() >= 3.55 - 1e-9

    def test_two_points_is_linear(self):
        p = PchipSpline1D([2.0, 6.0], [8.0, 4.0])
        assert p(4.0) == pytest.approx(6.0)

    def test_clamp_extrapolation(self):
        p = PchipSpline1D([2.0, 6.0], [8.0, 4.0], extrapolation="clamp")
        assert p(0.0) == pytest.approx(8.0)
        assert p(100.0) == pytest.approx(4.0)

    def test_linear_extrapolation_uses_edge_tangent(self):
        p = PchipSpline1D([2.0, 6.0], [8.0, 4.0], extrapolation="linear")
        assert p(8.0) == pytest.approx(2.0)

    def test_scalar_and_vector(self):
        p = PchipSpline1D([1, 2, 3], [3.0, 2.0, 1.0])
        assert isinstance(p(1.5), float)
        assert p(np.array([1.5, 2.5])).shape == (2,)

    def test_knots_property(self):
        p = PchipSpline1D([1, 2], [2.0, 1.0])
        assert list(p.knots) == [1.0, 2.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            PchipSpline1D([1], [1.0])
        with pytest.raises(ValueError):
            PchipSpline1D([1, 1], [1.0, 2.0])  # non-increasing x
        with pytest.raises(ValueError):
            PchipSpline1D([1, 2], [1.0, float("nan")])
        with pytest.raises(ValueError):
            PchipSpline1D([1, 2], [1.0, 2.0], extrapolation="weird")

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            min_size=3,
            max_size=10,
        )
    )
    def test_property_monotone_data_monotone_interpolant(self, raw):
        # Sort decreasing to build non-increasing data over 1..n knots.
        y = np.sort(np.asarray(raw))[::-1].copy()
        x = np.arange(1.0, y.size + 1)
        p = PchipSpline1D(x, y)
        q = np.linspace(1.0, float(y.size), 157)
        vals = p(q)
        assert np.all(np.diff(vals) <= 1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            min_size=3,
            max_size=8,
        )
    )
    def test_property_bounded_by_data_range(self, raw):
        y = np.asarray(raw)
        x = np.arange(1.0, y.size + 1)
        p = PchipSpline1D(x, y)
        q = np.linspace(1.0, float(y.size), 97)
        vals = p(q)
        assert vals.max() <= y.max() + 1e-9
        assert vals.min() >= y.min() - 1e-9
