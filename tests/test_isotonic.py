"""Tests for isotonic (PAVA) monotonisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mathx.isotonic import isotonic_nonincreasing


class TestPAVA:
    def test_already_monotone_unchanged(self):
        v = [9.0, 7.0, 7.0, 3.0]
        assert np.allclose(isotonic_nonincreasing(v), v)

    def test_single_violation_pooled(self):
        out = isotonic_nonincreasing([5.0, 1.0, 3.0])
        assert np.allclose(out, [5.0, 2.0, 2.0])

    def test_rising_sequence_becomes_flat_mean(self):
        out = isotonic_nonincreasing([1.0, 2.0, 3.0])
        assert np.allclose(out, [2.0, 2.0, 2.0])

    def test_poisoned_bump_flattened(self):
        # The migration pathology: one stale pessimistic knot mid-curve.
        out = isotonic_nonincreasing([4.7, 7.4, 3.4, 3.7])
        assert all(out[i] >= out[i + 1] for i in range(3))
        # The bump is pooled, not propagated to the ends.
        assert out[0] >= out[1]

    def test_weights_bias_the_pool(self):
        out = isotonic_nonincreasing([1.0, 3.0], weights=[3.0, 1.0])
        assert np.allclose(out, [1.5, 1.5])

    def test_empty(self):
        assert isotonic_nonincreasing([]).size == 0

    def test_single(self):
        assert np.allclose(isotonic_nonincreasing([4.2]), [4.2])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            isotonic_nonincreasing([1.0, float("nan")])

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            isotonic_nonincreasing([1.0, 2.0], weights=[1.0, 0.0])
        with pytest.raises(ValueError):
            isotonic_nonincreasing([1.0, 2.0], weights=[1.0])

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            isotonic_nonincreasing(np.zeros((2, 2)))

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=40))
    def test_property_output_monotone_and_mean_preserving(self, values):
        out = isotonic_nonincreasing(values)
        assert all(out[i] >= out[i + 1] - 1e-9 for i in range(len(out) - 1))
        # Least-squares projection preserves the (unweighted) mean.
        assert np.mean(out) == pytest.approx(np.mean(values))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=25))
    def test_property_projection_no_worse_than_flat(self, values):
        """PAVA is the least-squares projection: its residual can't exceed
        the flat-mean fit's residual (the mean is feasible)."""
        v = np.asarray(values)
        out = isotonic_nonincreasing(v)
        flat = np.full_like(v, v.mean())
        assert np.sum((out - v) ** 2) <= np.sum((flat - v) ** 2) + 1e-9
