"""Tests for the dist wire layer: framing, handshake refusals, codecs,
and the worker/store-proxy handshake behaviour over real sockets."""

from __future__ import annotations

import socket
import struct

import numpy as np
import pytest

import repro
from repro.dist import codec
from repro.dist.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    check_hello,
    hello_frame,
    recv_frame,
    send_frame,
)
from repro.dist.registry import parse_worker_address
from repro.exec.jobs import JobOutcome, JobSpec
from repro.sim.config import SystemConfig


def _spec(app: str = "swim", policy: str = "shared") -> JobSpec:
    return JobSpec(app=app, policy=policy, config=SystemConfig.default())


class TestFraming:
    def test_roundtrip(self):
        a, b = socket.socketpair()
        with a, b:
            send_frame(a, {"type": "ping", "n": 1})
            assert recv_frame(b) == {"type": "ping", "n": 1}

    def test_clean_eof_is_none(self):
        a, b = socket.socketpair()
        with b:
            a.close()
            assert recv_frame(b) is None

    def test_close_mid_frame_raises(self):
        a, b = socket.socketpair()
        with b:
            a.sendall(struct.pack(">I", 100) + b"partial")
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_frame(b)

    def test_oversized_length_prefix_raises(self):
        a, b = socket.socketpair()
        with a, b:
            a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError, match="exceeds"):
                recv_frame(b)

    def test_non_object_frame_raises(self):
        a, b = socket.socketpair()
        with a, b:
            body = b"[1,2,3]"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(ProtocolError, match="not an object"):
                recv_frame(b)

    def test_undecodable_frame_raises(self):
        a, b = socket.socketpair()
        with a, b:
            body = b"{not json"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(ProtocolError, match="undecodable"):
                recv_frame(b)


class TestHandshake:
    def test_valid_hello_passes(self):
        assert check_hello(hello_frame("digest", None)) is None

    def test_refuses_non_hello(self):
        assert "expected hello" in check_hello({"type": "job"})

    def test_refuses_protocol_mismatch(self):
        hello = hello_frame(None, None)
        hello["protocol"] = PROTOCOL_VERSION + 1
        refusal = check_hello(hello)
        assert "protocol mismatch" in refusal
        assert str(PROTOCOL_VERSION + 1) in refusal

    def test_refuses_version_mismatch_with_both_versions(self):
        hello = hello_frame(None, None)
        hello["version"] = "0.0.0"
        refusal = check_hello(hello)
        assert "version mismatch" in refusal
        assert "0.0.0" in refusal and repro.__version__ in refusal

    def test_worker_refuses_stale_version_on_the_wire(self):
        """A coordinator from another deploy gets a specific error frame
        and a closed connection, not a welcome."""
        from repro.dist import WorkerServer

        with WorkerServer() as server:
            server.start()
            with socket.create_connection(server.address, timeout=5.0) as sock:
                hello = hello_frame(None, None)
                hello["version"] = "0.0.0"
                send_frame(sock, hello)
                reply = recv_frame(sock)
                assert reply["type"] == "error"
                assert "version mismatch" in reply["error"]
                assert recv_frame(sock) is None  # server closed

    def test_worker_refuses_job_for_another_grid(self):
        """Job frames are pinned to the handshake's grid digest: a stale
        coordinator's frame is refused, never silently executed."""
        from repro.dist import WorkerServer

        spec = _spec()
        with WorkerServer() as server:
            server.start()
            with socket.create_connection(server.address, timeout=5.0) as sock:
                send_frame(sock, hello_frame("grid-a", None))
                assert recv_frame(sock)["type"] == "welcome"
                send_frame(
                    sock,
                    {
                        "type": "job",
                        "grid_digest": "grid-b",
                        "attempt": 1,
                        **codec.encode_spec(spec),
                    },
                )
                reply = recv_frame(sock)
                assert reply["type"] == "error"
                assert "grid digest mismatch" in reply["error"]


class TestAddressParsing:
    def test_host_port_string(self):
        assert parse_worker_address("localhost:9000") == ("localhost", 9000)

    def test_tuple_passthrough(self):
        assert parse_worker_address(("10.0.0.1", "8000")) == ("10.0.0.1", 8000)

    @pytest.mark.parametrize("bad", ["localhost", ":9000", "host:", "host:abc"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError, match="not host:port"):
            parse_worker_address(bad)


class TestSpecCodec:
    def test_roundtrip(self):
        spec = _spec()
        decoded = codec.decode_spec(codec.encode_spec(spec))
        assert decoded == spec
        assert decoded.digest == spec.digest

    def test_tampered_payload_fails_digest_check(self):
        payload = codec.encode_spec(_spec())
        payload["spec"]["app"] = "cg"  # corrupt in flight
        with pytest.raises(ValueError, match="spec digest mismatch"):
            codec.decode_spec(payload)

    def test_batch_digest_is_order_invariant(self):
        specs = [_spec("swim"), _spec("cg"), _spec("ft")]
        assert codec.batch_digest(specs) == codec.batch_digest(list(reversed(specs)))
        assert codec.batch_digest(specs) != codec.batch_digest(specs[:2])


class TestOutcomeCodec:
    def test_error_outcome_roundtrip(self):
        spec = _spec()
        outcome = JobOutcome(spec=spec, error="ValueError: boom", attempts=2, engine="remote")
        decoded = codec.decode_outcome(codec.encode_outcome(outcome), spec)
        assert decoded.error == "ValueError: boom"
        assert decoded.attempts == 2
        assert decoded.result is None

    def test_misrouted_outcome_is_refused(self):
        payload = codec.encode_outcome(JobOutcome(spec=_spec("swim"), error="x"))
        with pytest.raises(ValueError, match="does not answer"):
            codec.decode_outcome(payload, _spec("cg"))


class TestPrepBundleCodec:
    def test_roundtrip_verifies_hashes(self):
        arrays = {
            "a": np.arange(12, dtype=np.float64).reshape(3, 4),
            "b": np.array([1, 2, 3], dtype=np.int32),
        }
        meta = {"version": "x", "key": {"k": 1}, "digest": "d", "arrays": ["a", "b"],
                "note": "kept"}
        payload = codec.encode_prep_bundle(meta, arrays)
        decoded, extra = codec.decode_prep_bundle(payload)
        assert extra == {"note": "kept"}  # store bookkeeping stripped
        np.testing.assert_array_equal(decoded["a"], arrays["a"])
        assert decoded["b"].dtype == np.int32

    def test_tampered_array_is_rejected(self):
        payload = codec.encode_prep_bundle({}, {"x": np.ones(4)})
        entry = payload["arrays"]["x"]
        entry["data"] = entry["data"][:-8] + "AAAAAAA="
        with pytest.raises(ValueError, match="failed its content hash"):
            codec.decode_prep_bundle(payload)

    def test_malformed_payload_is_one_error_type(self):
        with pytest.raises(ValueError, match="malformed prep bundle"):
            codec.decode_prep_bundle({"arrays": {"x": {"data": 42}}})
