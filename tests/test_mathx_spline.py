"""Tests for the natural cubic spline and the CPI model fitter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.interpolate import CubicSpline as ScipyCubicSpline

from repro.mathx.spline import CubicSpline1D, LinearModel1D, fit_cpi_model


class TestCubicSpline:
    def test_passes_through_knots(self):
        x = np.array([1.0, 2.0, 4.0, 8.0, 16.0])
        y = np.array([10.0, 6.0, 4.0, 3.0, 2.5])
        s = CubicSpline1D(x, y)
        assert np.allclose(s(x), y)

    def test_scalar_in_scalar_out(self):
        s = CubicSpline1D([1, 2, 3], [3.0, 2.0, 1.5])
        out = s(2.5)
        assert isinstance(out, float)

    def test_vector_in_vector_out(self):
        s = CubicSpline1D([1, 2, 3], [3.0, 2.0, 1.5])
        out = s(np.array([1.5, 2.5]))
        assert out.shape == (2,)

    def test_matches_scipy_natural_spline(self):
        x = np.array([1.0, 3.0, 5.0, 9.0, 12.0, 20.0])
        y = np.array([9.0, 5.5, 4.2, 3.1, 2.9, 2.8])
        ours = CubicSpline1D(x, y)
        ref = ScipyCubicSpline(x, y, bc_type="natural")
        q = np.linspace(1.0, 20.0, 57)
        assert np.allclose(ours(q), ref(q), atol=1e-9)

    def test_linear_data_reproduced_exactly(self):
        x = np.array([1.0, 2.0, 5.0, 7.0])
        y = 3.0 - 0.25 * x
        s = CubicSpline1D(x, y)
        q = np.linspace(1, 7, 31)
        assert np.allclose(s(q), 3.0 - 0.25 * q, atol=1e-12)

    def test_clamp_extrapolation_holds_boundary_values(self):
        s = CubicSpline1D([2, 4, 8], [6.0, 4.0, 3.0], extrapolation="clamp")
        assert s(0.5) == pytest.approx(6.0)
        assert s(100.0) == pytest.approx(3.0)

    def test_linear_extrapolation_continues_tangent(self):
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([4.0, 3.0, 2.0])  # straight line, slope -1
        s = CubicSpline1D(x, y, extrapolation="linear")
        assert s(0.0) == pytest.approx(5.0, abs=1e-9)
        assert s(5.0) == pytest.approx(0.0, abs=1e-9)

    def test_linear_extrapolation_is_continuous_at_boundary(self):
        s = CubicSpline1D([1, 3, 6, 9], [8.0, 5.0, 4.5, 4.4], extrapolation="linear")
        assert s(9.0) == pytest.approx(s(9.0 - 1e-9), abs=1e-6)
        assert s(1.0) == pytest.approx(s(1.0 + 1e-9), abs=1e-6)

    def test_duplicate_x_values_averaged(self):
        s = CubicSpline1D([1, 1, 2, 3], [4.0, 6.0, 3.0, 2.0])
        assert s(1.0) == pytest.approx(5.0)

    def test_unsorted_input_accepted(self):
        s1 = CubicSpline1D([3, 1, 2], [2.0, 4.0, 3.0])
        s2 = CubicSpline1D([1, 2, 3], [4.0, 3.0, 2.0])
        q = np.linspace(1, 3, 11)
        assert np.allclose(s1(q), s2(q))

    def test_fewer_than_three_knots_rejected(self):
        with pytest.raises(ValueError):
            CubicSpline1D([1, 2], [1.0, 2.0])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            CubicSpline1D([1, 2, 3], [1.0, float("nan"), 2.0])

    def test_unknown_extrapolation_rejected(self):
        with pytest.raises(ValueError):
            CubicSpline1D([1, 2, 3], [1.0, 2.0, 3.0], extrapolation="bogus")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            CubicSpline1D([1, 2, 3], [1.0, 2.0])

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=-50, max_value=50).map(float),
            min_size=4,
            max_size=10,
            unique=True,
        ),
        st.data(),
    )
    def test_property_interpolates_all_knots(self, xs, data):
        ys = data.draw(
            st.lists(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                min_size=len(xs),
                max_size=len(xs),
            )
        )
        s = CubicSpline1D(xs, ys)
        order = np.argsort(xs)
        assert np.allclose(s(np.asarray(xs)[order]), np.asarray(ys)[order], atol=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=-10, max_value=40, allow_nan=False))
    def test_property_clamped_output_within_data_range(self, q):
        s = CubicSpline1D([1, 4, 9, 16], [8.0, 4.0, 2.0, 1.0], extrapolation="clamp")
        # Inside the knot range a cubic can overshoot, but the clamped
        # *extrapolation* must stay at boundary values.
        if q <= 1:
            assert s(q) == pytest.approx(8.0)
        elif q >= 16:
            assert s(q) == pytest.approx(1.0)


class TestLinearModel:
    def test_single_point_is_constant(self):
        m = LinearModel1D(x=np.array([4.0]), y=np.array([2.5]))
        assert m(0.0) == pytest.approx(2.5)
        assert m(100.0) == pytest.approx(2.5)

    def test_two_points_secant(self):
        m = LinearModel1D(x=np.array([2.0, 4.0]), y=np.array([6.0, 2.0]), extrapolation="linear")
        assert m(3.0) == pytest.approx(4.0)
        assert m(5.0) == pytest.approx(0.0)

    def test_two_points_clamped(self):
        m = LinearModel1D(x=np.array([2.0, 4.0]), y=np.array([6.0, 2.0]), extrapolation="clamp")
        assert m(0.0) == pytest.approx(6.0)
        assert m(9.0) == pytest.approx(2.0)

    def test_knots_property(self):
        m = LinearModel1D(x=np.array([2.0, 4.0]), y=np.array([6.0, 2.0]))
        assert list(m.knots) == [2.0, 4.0]


class TestFitCpiModel:
    def test_dispatch_one_point(self):
        m = fit_cpi_model([8], [3.0])
        assert m(1) == pytest.approx(3.0)
        assert m(32) == pytest.approx(3.0)

    def test_dispatch_two_points(self):
        m = fit_cpi_model([4, 8], [6.0, 4.0])
        assert m(6) == pytest.approx(5.0)

    def test_dispatch_three_points_is_spline(self):
        m = fit_cpi_model([2, 4, 8], [8.0, 5.0, 4.0])
        assert isinstance(m, type(fit_cpi_model([1, 2, 3], [1.0, 2.0, 3.0])))
        assert m(4) == pytest.approx(5.0)

    def test_duplicates_collapse_to_fewer_knots(self):
        # Three observations but only two distinct way counts -> linear.
        m = fit_cpi_model([4, 4, 8], [6.0, 8.0, 3.0])
        assert isinstance(m, LinearModel1D)
        assert m(4) == pytest.approx(7.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_cpi_model([], [])

    def test_knots_exposed(self):
        m = fit_cpi_model([2, 4, 8], [8.0, 5.0, 4.0])
        assert list(m.knots) == [2.0, 4.0, 8.0]
