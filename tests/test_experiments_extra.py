"""Additional coverage for experiment helpers."""

import pytest

from repro.experiments.comparison import speedup_table
from repro.experiments.runner import clear_result_cache
from repro.experiments.sensitivity import _partition_with_probe
from repro.sim.config import SystemConfig


class TestPartitionWithProbe:
    def test_probe_gets_requested_ways(self):
        targets = _partition_with_probe(1, 16, 4, 32)
        assert targets[1] == 16
        assert sum(targets) == 32

    def test_remainder_spread_evenly(self):
        targets = _partition_with_probe(0, 8, 4, 32)
        assert targets[0] == 8
        assert sorted(targets[1:]) == [8, 8, 8]

    def test_too_greedy_probe_rejected(self):
        with pytest.raises(ValueError):
            _partition_with_probe(0, 31, 4, 32)


class TestSpeedupTable:
    def test_renders_requested_apps_and_baselines(self):
        clear_result_cache()
        cfg = SystemConfig.quick()
        out = speedup_table(cfg, ["ft"], baselines=("shared",))
        assert "ft" in out
        assert "vs shared" in out
        lines = out.splitlines()
        assert len(lines) == 4  # title + header + rule + one row
