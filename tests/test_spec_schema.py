"""Conformance tests for the experiment-spec schema (DESIGN.md §H).

Three contracts pinned here:

* **defaulting** — a minimal spec parses to the same fully-defaulted
  grid/engine/expectations a maximal spec spells out, and
  ``parse_spec(spec.to_dict())`` round-trips exactly;
* **actionable errors** — every malformed field is reported with a field
  path (``spec.grid.thread_counts[2]: expected int >= 1``), all problems
  collected into one :class:`SpecError`, and the CLI surfaces them with
  exit 2;
* **robustness** — hypothesis-fuzzed junk documents either parse or raise
  :class:`SpecError`; nothing else ever escapes.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.__main__ import main
from repro.exec.engine import EngineOptions
from repro.exec.grid import DEFAULT_POLICIES
from repro.spec import ExperimentSpec, SpecError, load_spec, parse_spec
from repro.trace.workloads import list_workloads

MINIMAL = {"spec_version": 1, "grid": {"apps": ["ft"], "policies": ["shared"]}}


def _spec(**overrides) -> dict:
    doc = {
        "spec_version": 1,
        "grid": {"apps": ["ft", "cg"], "policies": ["shared", "static-equal"]},
        "config": {"intervals": 3, "interval_instructions": 2000},
    }
    doc.update(overrides)
    return doc


def _problems(doc) -> list[str]:
    with pytest.raises(SpecError) as excinfo:
        parse_spec(doc)
    return excinfo.value.problems


class TestDefaulting:
    def test_minimal_spec_fills_every_default(self):
        spec = parse_spec(MINIMAL)
        assert spec.grid.apps == ("ft",)
        assert spec.grid.seeds == (1,)
        assert spec.grid.thread_counts == (4,)
        assert spec.grid.baseline == "shared"
        assert spec.grid.intervals == 50
        assert spec.grid.interval_instructions == 20_000
        assert spec.grid.cache_backend == "fast"
        assert spec.engine.resolved_kind() == "serial"
        assert spec.engine.options == EngineOptions()
        assert spec.journal is None and spec.faults is None
        assert spec.expectations.max_failures == 0
        assert spec.expectations.tolerances == {}

    def test_omitted_axes_default_like_the_cli(self):
        spec = parse_spec({"spec_version": 1, "grid": {}})
        assert spec.grid.apps == tuple(list_workloads())
        assert spec.grid.policies == DEFAULT_POLICIES

    def test_policy_aliases_normalise(self):
        spec = parse_spec(_spec(grid={"apps": ["ft"], "policies": ["model", "equal"]}))
        assert spec.grid.policies == ("model-based", "static-equal")
        assert spec.grid.baseline == "model-based"  # first policy: shared not swept

    def test_baseline_alias_normalises(self):
        doc = _spec(grid={"apps": ["ft"], "policies": ["shared", "equal"],
                          "baseline": "equal"})
        assert parse_spec(doc).grid.baseline == "static-equal"

    def test_full_spec_parses(self):
        doc = _spec(
            name="full",
            description="all blocks populated",
            engine={"kind": "pool", "jobs": 3, "max_retries": 1, "backoff_s": 0.0},
            journal={"path": "runs/full.journal", "resume": False},
            store_dir="runs/store",
            prep_dir="runs/prep",
            faults={"seed": 7, "rules": [{"kind": "job-exception", "rate": 0.5,
                                          "attempts": [1]}]},
            expectations={"max_failures": 2, "max_baseline_missing": 0,
                          "tolerances": {"total_cycles": 0.01},
                          "min_mean_speedup": {"static-equal": -0.5}},
        )
        spec = parse_spec(doc)
        assert spec.engine.resolved_kind() == "pool" and spec.engine.jobs == 3
        assert spec.engine.options.max_retries == 1
        assert spec.journal.path == "runs/full.journal" and not spec.journal.resume
        assert spec.store_dir == "runs/store" and spec.prep_dir == "runs/prep"
        assert spec.faults is not None and spec.faults.seed == 7
        assert spec.expectations.max_failures == 2
        assert spec.expectations.tolerances == {"total_cycles": 0.01}
        assert spec.expectations.min_mean_speedup == {"static-equal": -0.5}

    def test_engine_kind_inference_matches_cli_rule(self):
        assert parse_spec(_spec(engine={"jobs": 4})).engine.resolved_kind() == "pool"
        assert parse_spec(_spec(engine={"jobs": 1})).engine.resolved_kind() == "serial"
        spec = parse_spec(_spec(engine={"workers": ["127.0.0.1:9999"]}))
        assert spec.engine.resolved_kind() == "remote"


class TestRoundTrip:
    def test_to_dict_round_trips(self):
        doc = _spec(
            name="rt",
            engine={"jobs": 2},
            journal={"path": "j.jsonl"},
            expectations={"tolerances": {"l2_misses": 0.05}},
        )
        spec = parse_spec(doc)
        again = parse_spec(spec.to_dict())
        assert again.grid == spec.grid
        assert again.engine == spec.engine
        assert again.journal == spec.journal
        assert again.expectations == spec.expectations

    def test_to_dict_is_json_serialisable_and_fully_defaulted(self):
        doc = json.loads(json.dumps(parse_spec(MINIMAL).to_dict()))
        assert doc["config"] == {
            "intervals": 50, "interval_instructions": 20_000, "cache_backend": "fast",
        }
        assert doc["grid"]["seeds"] == [1] and doc["grid"]["baseline"] == "shared"

    def test_round_trip_preserves_grid_digest(self):
        spec = parse_spec(_spec())
        assert parse_spec(spec.to_dict()).grid.digest == spec.grid.digest


class TestFieldPathErrors:
    def test_thread_counts_path_matches_the_documented_example(self):
        doc = _spec(grid={"apps": ["ft"], "policies": ["shared"],
                          "thread_counts": [4, 8, 0]})
        assert _problems(doc) == ["spec.grid.thread_counts[2]: expected int >= 1"]

    @pytest.mark.parametrize(
        ("doc", "path"),
        [
            (_spec(grid={"apps": ["nope"], "policies": ["shared"]}), "spec.grid.apps[0]"),
            (_spec(grid={"apps": ["ft"], "policies": ["bogus"]}), "spec.grid.policies[0]"),
            (_spec(grid={"apps": ["ft"], "policies": ["shared"], "seeds": ["x"]}),
             "spec.grid.seeds[0]"),
            (_spec(grid={"apps": [], "policies": ["shared"]}), "spec.grid.apps"),
            (_spec(grid={"apps": ["ft"], "policies": ["shared"],
                         "baseline": "model-based"}), "spec.grid.baseline"),
            (_spec(grid={"apps": ["ft"], "policies": ["shared"], "extra": 1}),
             "spec.grid.extra"),
            (_spec(config={"intervals": 0}), "spec.config.intervals"),
            (_spec(config={"interval_instructions": -5}),
             "spec.config.interval_instructions"),
            (_spec(config={"cache_backend": "turbo"}), "spec.config.cache_backend"),
            (_spec(engine={"kind": "gpu"}), "spec.engine.kind"),
            (_spec(engine={"jobs": 0}), "spec.engine.jobs"),
            (_spec(engine={"kind": "remote"}), "spec.engine.workers"),
            (_spec(engine={"workers": ["not-an-address"]}), "spec.engine.workers[0]"),
            (_spec(journal={"resume": True}), "spec.journal.path"),
            (_spec(journal={"path": "j", "resume": "yes"}), "spec.journal.resume"),
            (_spec(faults={"rules": [{"kind": "martian"}]}), "spec.faults"),
            (_spec(expectations={"max_failures": -1}),
             "spec.expectations.max_failures"),
            (_spec(expectations={"tolerances": {"wat": 0.1}}),
             "spec.expectations.tolerances.wat"),
            (_spec(expectations={"tolerances": {"total_cycles": -0.1}}),
             "spec.expectations.tolerances.total_cycles"),
            (_spec(expectations={"min_mean_speedup": {"throughput": 0.0}}),
             "spec.expectations.min_mean_speedup.throughput"),
            (_spec(expectations={"min_mean_speedup": {"shared": 0.0}}),
             "spec.expectations.min_mean_speedup.shared"),
            (_spec(surprise=1), "spec.surprise"),
            ({"grid": {"apps": ["ft"], "policies": ["shared"]}}, "spec.spec_version"),
            ({"spec_version": 99, "grid": {}}, "spec.spec_version"),
            ({"spec_version": 1}, "spec.grid"),
            # Explicit ``grid: null`` is missing too, not a silent pass
            # (hypothesis-found: parse used to succeed with no grid).
            ({"spec_version": 1, "grid": None}, "spec.grid"),
        ],
    )
    def test_each_bad_field_is_named(self, doc, path):
        problems = _problems(doc)
        assert any(p.startswith(f"{path}:") for p in problems), problems

    def test_all_problems_collected_at_once(self):
        doc = {
            "spec_version": 2,
            "grid": {"apps": ["nope"], "policies": ["shared"]},
            "engine": {"jobs": 0},
            "journal": {"resume": True},
            "junk": None,
        }
        paths = {p.split(":")[0] for p in _problems(doc)}
        assert paths == {
            "spec.spec_version", "spec.grid.apps[0]", "spec.engine.jobs",
            "spec.journal.path", "spec.junk",
        }

    def test_non_mapping_document_rejected(self):
        assert _problems([1, 2, 3])[0].startswith("spec:")
        assert _problems("grid: yes")[0].startswith("spec:")


class TestLoadSpec:
    def test_json_spec_loads(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps(_spec(name="from-json")))
        spec = load_spec(path)
        assert spec.name == "from-json" and spec.source == str(path)

    def test_yaml_spec_loads(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "s.yaml"
        path.write_text(yaml.safe_dump(_spec(name="from-yaml")))
        assert load_spec(path).name == "from-yaml"

    def test_missing_file_is_a_spec_error(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read"):
            load_spec(tmp_path / "absent.json")

    def test_invalid_json_is_a_spec_error(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text("{not json")
        with pytest.raises(SpecError, match="not valid JSON"):
            load_spec(path)

    def test_checked_in_specs_all_parse(self):
        from pathlib import Path

        specs_dir = Path(__file__).parent.parent / "specs"
        paths = sorted(specs_dir.glob("*.json"))
        try:
            import yaml  # noqa: F401
        except ImportError:
            pass
        else:
            paths += sorted(specs_dir.glob("*.yaml"))
        assert paths, "specs/ must hold checked-in spec files"
        for path in paths:
            spec = load_spec(path)
            assert spec.grid.n_cells >= 1, path


class TestCliExit2:
    """Every malformed spec reaching the CLI exits 2 with the field path."""

    def test_run_spec_reports_field_paths(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(_spec(
            grid={"apps": ["ft"], "policies": ["shared"], "thread_counts": [4, 0]},
            engine={"jobs": 0},
        )))
        assert main(["run-spec", str(path)]) == 2
        err = capsys.readouterr().err
        assert "spec.grid.thread_counts[1]: expected int >= 1" in err
        assert "spec.engine.jobs" in err

    def test_compare_runs_rejects_bad_spec(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"spec_version": 1}))
        assert main(["compare-runs", str(tmp_path), str(tmp_path),
                     "--spec", str(path)]) == 2
        assert "spec.grid" in capsys.readouterr().err

    def test_submit_rejects_bad_spec_before_connecting(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(_spec(grid={"apps": ["nope"]})))
        assert main(["submit", "--server", "127.0.0.1:1", "--spec", str(path)]) == 2
        assert "spec.grid.apps[0]" in capsys.readouterr().err


# A generator of adversarial documents: structurally spec-shaped but with
# junk leaves, so the fuzz actually reaches the per-field validators
# instead of dying at the top-level type check every time.
_junk = st.one_of(
    st.none(), st.booleans(), st.integers(-3, 10), st.floats(allow_nan=False),
    st.text(max_size=8), st.lists(st.integers(-2, 9), max_size=3),
    st.lists(st.text(max_size=6), max_size=3),
)
_fuzzed_doc = st.fixed_dictionaries(
    {},
    optional={
        "spec_version": st.one_of(st.just(1), _junk),
        "name": _junk,
        "grid": st.one_of(
            _junk,
            st.fixed_dictionaries({}, optional={
                "apps": st.one_of(st.just(["ft"]), _junk),
                "policies": st.one_of(st.just(["shared"]), _junk),
                "seeds": _junk,
                "thread_counts": _junk,
                "baseline": _junk,
            }),
        ),
        "config": st.one_of(_junk, st.dictionaries(st.text(max_size=25), _junk, max_size=3)),
        "engine": st.one_of(_junk, st.dictionaries(st.text(max_size=25), _junk, max_size=3)),
        "journal": st.one_of(_junk, st.dictionaries(st.text(max_size=25), _junk, max_size=2)),
        "faults": _junk,
        "expectations": st.one_of(
            _junk, st.dictionaries(st.text(max_size=25), _junk, max_size=3)
        ),
    },
)


class TestFuzz:
    @given(doc=_fuzzed_doc)
    @settings(max_examples=150, deadline=None)
    def test_parse_never_raises_anything_but_spec_error(self, doc):
        try:
            spec = parse_spec(doc)
        except SpecError as exc:
            assert exc.problems, "SpecError must carry at least one problem"
            for problem in exc.problems:
                assert problem.startswith("spec"), problem
                assert ": " in problem, problem
        else:
            assert isinstance(spec, ExperimentSpec)
            # Anything that parses must round-trip through its own dump.
            assert parse_spec(spec.to_dict()).grid == spec.grid
