"""Tests for the command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main
from repro.experiments import runner as runner_mod


@pytest.fixture(autouse=True)
def _reset_execution_layer():
    """main() installs engines/stores globally and results memoise across
    tests; isolate each test so counter assertions are deterministic."""
    runner_mod.clear_result_cache()
    runner_mod.reset_execution_stats()
    yield
    runner_mod.configure(engine=None, store=None)
    runner_mod.clear_result_cache()
    runner_mod.reset_execution_stats()


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "swim"])
        assert args.app == "swim"
        assert args.policy == "model-based"
        assert args.trace is None
        assert args.trace_format == "jsonl"

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "swim", "--policy", "bogus"])

    def test_policy_aliases_normalise(self):
        args = build_parser().parse_args(["run", "swim", "--policy", "model"])
        assert args.policy == "model-based"
        args = build_parser().parse_args(["sweep", "--policies", "cpi", "equal"])
        assert args.policies == ["cpi-proportional", "static-equal"]

    def test_jobs_must_be_positive(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["run", "swim", "--jobs", "0"])
        assert exc.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "swim", "--jobs", "many"])

    def test_trace_format_is_validated(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["run", "swim", "--trace", "t", "--trace-format", "xml"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_report_args(self):
        args = build_parser().parse_args(["report", "t.jsonl", "--top", "3"])
        assert args.trace == "t.jsonl"
        assert args.top == 3

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig20"])
        assert args.name == "fig20"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


QUICK = ["--intervals", "6", "--interval-instructions", "3000"]


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "swim" in out
        assert "model-based" in out
        assert "fig20" in out

    def test_run_table(self, capsys):
        assert main(["run", "ft", "--policy", "shared", *QUICK]) == 0
        out = capsys.readouterr().out
        assert "ft under shared" in out
        assert "busy CPI" in out

    def test_run_json(self, capsys):
        assert main(["run", "ft", "--policy", "shared", "--json", *QUICK]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["app"] == "ft"
        assert data["total_cycles"] > 0

    def test_compare(self, capsys):
        assert main(["compare", "ft", *QUICK]) == 0
        out = capsys.readouterr().out
        assert "vs shared" in out
        assert "ft" in out

    def test_compare_unknown_app(self, capsys):
        assert main(["compare", "not-an-app", *QUICK]) == 2
        assert "unknown workloads" in capsys.readouterr().err

    def test_figure_fig2(self, capsys):
        assert main(["figure", "fig2", *QUICK]) == 0
        assert "system configuration" in capsys.readouterr().out

    def test_figure_json(self, capsys):
        assert main(["figure", "fig2", "--json", *QUICK]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["figure"].startswith("Figure 2")

    def test_run_unknown_app_exits_2(self, capsys):
        assert main(["run", "not-an-app", *QUICK]) == 2
        err = capsys.readouterr().err
        assert "unknown workload" in err
        assert "swim" in err  # the message lists the known workloads


class TestExecutionFlags:
    def test_compare_jobs_output_identical_to_serial(self, capsys):
        argv = ["compare", "ft", "cg", *QUICK]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        runner_mod.clear_result_cache()
        assert main([*argv, "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_verbose_reports_counters(self, capsys):
        assert main(["compare", "ft", *QUICK, "-v"]) == 0
        err = capsys.readouterr().err
        assert "engine=serial" in err
        assert "simulated=4" in err

    def test_cache_dir_warm_run_simulates_nothing(self, tmp_path, capsys):
        argv = ["compare", "ft", *QUICK, "--cache-dir", str(tmp_path), "-v"]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert "simulated=4" in cold.err
        assert "store-writes=4" in cold.err

        runner_mod.clear_result_cache()  # fresh process simulation
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert "simulated=0" in warm.err
        assert "store-hits=4" in warm.err
        assert warm.out == cold.out, "warm store must reproduce tables exactly"

    def test_run_uses_cache_dir(self, tmp_path, capsys):
        argv = ["run", "ft", "--policy", "shared", *QUICK, "--cache-dir", str(tmp_path), "-v"]
        assert main(argv) == 0
        assert "simulated=1" in capsys.readouterr().err
        runner_mod.clear_result_cache()
        assert main(argv) == 0
        assert "store-hits=1" in capsys.readouterr().err


class TestTraceFlags:
    def test_run_trace_writes_interval_and_repartition_events(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(["run", "swim", "--policy", "model", *QUICK, "--trace", str(trace)]) == 0
        kinds = [json.loads(line)["kind"] for line in trace.read_text().splitlines()]
        assert kinds.count("interval") >= 6  # one per interval
        assert "repartition" in kinds
        assert "convergence" in kinds
        assert kinds[-1] == "metrics"  # final registry snapshot

    def test_run_trace_bypasses_warm_store(self, tmp_path, capsys):
        store = tmp_path / "store"
        argv = ["run", "ft", "--policy", "shared", *QUICK, "--cache-dir", str(store)]
        assert main(argv) == 0  # warm the store
        capsys.readouterr()
        trace = tmp_path / "t.jsonl"
        assert main([*argv, "--trace", str(trace)]) == 0
        kinds = [json.loads(line)["kind"] for line in trace.read_text().splitlines()]
        assert "interval" in kinds, "traced run must simulate, not replay the store"

    def test_chrome_format_writes_trace_event_array(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        assert main([
            "run", "swim", "--policy", "model", *QUICK,
            "--trace", str(trace), "--trace-format", "chrome",
        ]) == 0
        data = json.loads(trace.read_text())
        assert isinstance(data, list) and data
        assert all("ph" in e for e in data)

    def test_report_summarizes_a_trace(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(["run", "swim", "--policy", "model", *QUICK, "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "run swim/model-based" in out
        assert "per-thread CPI trajectory" in out
        assert "repartitions:" in out

    def test_report_rejects_chrome_trace(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        trace.write_text("[]\n")
        assert main(["report", str(trace)]) == 2
        assert "Chrome trace" in capsys.readouterr().err

    def test_report_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "absent.jsonl")]) == 2
        assert "report:" in capsys.readouterr().err

    def test_compare_trace_records_job_lifecycle(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(["compare", "ft", *QUICK, "--trace", str(trace)]) == 0
        kinds = [json.loads(line)["kind"] for line in trace.read_text().splitlines()]
        assert kinds.count("job_start") == kinds.count("job_end") >= 4
        assert "span" in kinds

    def test_tracer_slot_restored_after_main(self, tmp_path, capsys):
        from repro.obs import NULL_TRACER, get_tracer

        trace = tmp_path / "t.jsonl"
        assert main(["run", "ft", "--policy", "shared", *QUICK, "--trace", str(trace)]) == 0
        assert get_tracer() is NULL_TRACER


class TestSweepCommand:
    def test_sweep_table(self, capsys):
        assert main([
            "sweep", "--apps", "ft", "cg", "--policies", "shared", "model-based",
            "--intervals", "6", "--interval-instructions", "3000",
        ]) == 0
        out = capsys.readouterr().out
        assert "sweep: 2 apps x 2 policies" in out
        assert "model-based vs shared" in out
        assert "4 jobs on serial" in out

    def test_sweep_json_with_grid_axes(self, capsys):
        assert main([
            "sweep", "--apps", "ft", "--policies", "shared", "static-equal",
            "--seeds", "1", "2", "--intervals", "5", "--interval-instructions", "2000",
            "--json",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["seeds"] == [1, 2]
        assert len(data["cells"]) == 4
        assert data["n_failures"] == 0

    def test_sweep_with_jobs_and_store(self, tmp_path, capsys):
        argv = [
            "sweep", "--apps", "ft", "--policies", "shared", "model-based",
            "--intervals", "5", "--interval-instructions", "2000",
            "--jobs", "2", "--cache-dir", str(tmp_path), "-v",
        ]
        assert main(argv) == 0
        assert "simulated=2" in capsys.readouterr().err
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "simulated=0" in err
        assert "store-hits=2" in err

    def test_sweep_rejects_unknown_app_and_baseline(self, capsys):
        assert main(["sweep", "--apps", "nope"]) == 2
        assert "unknown workloads" in capsys.readouterr().err
        assert main([
            "sweep", "--apps", "ft", "--policies", "shared", "--baseline", "model-based",
        ]) == 2
        assert "baseline" in capsys.readouterr().err


class TestRunnerLayer:
    def test_get_results_batches_and_memoises(self, quick_config):
        from repro.experiments.runner import execution_stats, get_results, reset_execution_stats

        runner_mod.clear_result_cache()
        reset_execution_stats()
        pairs = [("ft", "shared"), ("ft", "model-based")]
        first = get_results(pairs, quick_config)
        assert set(first) == set(pairs)
        stats = execution_stats()
        assert stats["simulated"] == 2
        second = get_results(pairs, quick_config)
        assert second == first
        assert execution_stats()["memo_hits"] == 2

    def test_failed_job_raises_runtime_error(self, quick_config):
        from repro.exec.engine import SerialEngine

        def boom(spec):
            raise ValueError("injected failure")

        runner_mod.clear_result_cache()
        runner_mod.configure(engine=SerialEngine(max_retries=0, backoff_s=0.0, job_runner=boom))
        with pytest.raises(RuntimeError, match="injected failure"):
            runner_mod.get_result("ft", "shared", quick_config.with_(seed=31337))


class TestCrashSafetyCli:
    SWEEP = [
        "sweep", "--apps", "ft", "--policies", "shared", "static-equal",
        "--intervals", "5", "--interval-instructions", "2000",
    ]

    def test_faults_inline_json_parsed(self):
        args = build_parser().parse_args(
            ["run", "swim", "--faults", '{"seed": 9, "rules": [{"kind": "delay"}]}']
        )
        assert args.faults.seed == 9
        assert args.faults.rules[0].kind == "delay"

    def test_faults_from_file(self, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text('{"rules": [{"kind": "job-exception", "match": "ft/*"}]}')
        args = build_parser().parse_args(["run", "swim", "--faults", str(plan)])
        assert args.faults.rules[0].match == "ft/*"

    def test_bad_faults_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["run", "swim", "--faults", "{not json"])
        assert exc.value.code == 2
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "swim", "--faults", '{"rules": [{"kind": "bogus"}]}']
            )

    def test_resume_requires_journal(self, capsys):
        assert main([*self.SWEEP, "--resume"]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_sweep_journal_written_and_resumed(self, tmp_path, capsys):
        journal = tmp_path / "sweep.jsonl"
        argv = [*self.SWEEP, "--journal", str(journal), "-v"]
        assert main(argv) == 0
        assert journal.is_file()
        err = capsys.readouterr().err
        assert "simulated=2" in err and "resumed=0" in err
        assert main([*argv, "--resume"]) == 0
        err = capsys.readouterr().err
        assert "simulated=0" in err and "resumed=2" in err

    def test_resume_foreign_journal_exits_2(self, tmp_path, capsys):
        journal = tmp_path / "sweep.jsonl"
        assert main([*self.SWEEP, "--journal", str(journal)]) == 0
        capsys.readouterr()
        other = [
            "sweep", "--apps", "cg", "--policies", "shared", "static-equal",
            "--intervals", "5", "--interval-instructions", "2000",
            "--journal", str(journal), "--resume",
        ]
        assert main(other) == 2
        assert "different sweep grid" in capsys.readouterr().err

    def test_faulty_sweep_reports_injections(self, capsys):
        plan = '{"rules": [{"kind": "job-exception", "match": "*", "attempts": [1]}]}'
        assert main([*self.SWEEP, "--faults", plan, "-v"]) == 0
        err = capsys.readouterr().err
        assert "faults-injected=2" in err


class TestServeCli:
    """`repro serve` / `repro submit` parsing plus the argparse-level
    sweep validation (satellites of the service PR)."""

    SWEEP = TestCrashSafetyCli.SWEEP

    def test_journal_must_not_be_a_directory(self, tmp_path, capsys):
        assert main([*self.SWEEP, "--journal", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "is a directory" in err and "usage:" in err

    def test_resume_without_journal_shows_usage(self, capsys):
        assert main([*self.SWEEP, "--resume"]) == 2
        err = capsys.readouterr().err
        assert "--resume requires --journal" in err and "usage:" in err

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8787
        assert args.data_dir == "serve-data"
        assert args.jobs == 1
        assert args.max_pending_cells == 512
        assert args.max_sweeps_per_client == 8

    def test_serve_rejects_bad_limits(self):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["serve", "--max-pending-cells", "0"])
        assert exc.value.code == 2

    def test_submit_defaults_mirror_sweep(self):
        args = build_parser().parse_args(["submit"])
        assert args.server == "127.0.0.1:8787"
        assert args.seeds == [1]
        assert args.thread_counts == [4]
        assert args.cache_backend == "fast"
        assert not args.no_resume

    def test_submit_policy_aliases_normalised(self):
        args = build_parser().parse_args(["submit", "--policies", "equal", "model"])
        assert args.policies == ["static-equal", "model-based"]

    def test_submit_bad_server_exits_2(self, capsys):
        assert main(["submit", "--server", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_submit_unreachable_server_exits_1(self, capsys):
        # Port 1 is never listening; the failure must be a message, not
        # a traceback.
        assert main([
            "submit", "--server", "127.0.0.1:1", "--apps", "ft",
            "--policies", "shared", "--timeout", "2",
        ]) == 1
        err = capsys.readouterr().err
        assert "cannot reach service" in err and "repro serve" in err

    def test_submit_against_live_service(self, tmp_path, capsys):
        from repro.serve.runner import ServeSettings, start_in_thread

        settings = ServeSettings(port=0, data_dir=tmp_path / "data", jobs=1)
        handle = start_in_thread(settings)
        try:
            argv = [
                "submit", "--server", f"127.0.0.1:{handle.port}",
                "--apps", "ft", "--policies", "shared", "static-equal",
                "--intervals", "3", "--interval-instructions", "2000",
            ]
            assert main(argv) == 0
            out = capsys.readouterr().out
            assert "2/2 cells" in out and "mean speedup over shared" in out
            # Second submission: same grid, runs warm (attach or store).
            assert main([*argv, "--json"]) == 0
            data = json.loads(capsys.readouterr().out)
            assert data["status"] == "done"
            assert data["result"]["n_failures"] == 0
        finally:
            handle.stop()
