"""Tests for the command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "swim"])
        assert args.app == "swim"
        assert args.policy == "model-based"

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "swim", "--policy", "bogus"])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig20"])
        assert args.name == "fig20"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


QUICK = ["--intervals", "6", "--interval-instructions", "3000"]


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "swim" in out
        assert "model-based" in out
        assert "fig20" in out

    def test_run_table(self, capsys):
        assert main(["run", "ft", "--policy", "shared", *QUICK]) == 0
        out = capsys.readouterr().out
        assert "ft under shared" in out
        assert "busy CPI" in out

    def test_run_json(self, capsys):
        assert main(["run", "ft", "--policy", "shared", "--json", *QUICK]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["app"] == "ft"
        assert data["total_cycles"] > 0

    def test_compare(self, capsys):
        assert main(["compare", "ft", *QUICK]) == 0
        out = capsys.readouterr().out
        assert "vs shared" in out
        assert "ft" in out

    def test_compare_unknown_app(self, capsys):
        assert main(["compare", "not-an-app", *QUICK]) == 2
        assert "unknown workloads" in capsys.readouterr().err

    def test_figure_fig2(self, capsys):
        assert main(["figure", "fig2", *QUICK]) == 0
        assert "system configuration" in capsys.readouterr().out

    def test_figure_json(self, capsys):
        assert main(["figure", "fig2", "--json", *QUICK]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["figure"].startswith("Figure 2")
