"""Tests for repro.exec.sweep: grid expansion, store reuse, aggregation."""

from __future__ import annotations

import json

import pytest

from repro.exec.engine import SerialEngine
from repro.exec.store import ResultStore
from repro.exec.sweep import run_sweep
from repro.sim.driver import run_application


@pytest.fixture
def sweep_config(tiny_config):
    return tiny_config


class TestRunSweep:
    def test_grid_shape_and_aggregates(self, sweep_config):
        result = run_sweep(
            ["ft", "cg"],
            ["shared", "model-based"],
            seeds=[1, 2],
            config=sweep_config,
        )
        assert result.n_jobs == 2 * 2 * 2
        assert result.baseline == "shared"
        assert result.simulated == 8
        assert result.store_hits == 0
        assert not result.failures
        # speedup agrees with a direct A/B on the same config
        dyn = run_application("ft", "model-based", sweep_config.with_(seed=1))
        base = run_application("ft", "shared", sweep_config.with_(seed=1))
        expected = base.total_cycles / dyn.total_cycles - 1.0
        assert result.speedups("ft", "model-based")[0] == pytest.approx(expected)
        assert result.mean_speedup("ft", "model-based") is not None
        assert result.policy_mean_speedup("model-based") is not None

    def test_store_warm_start_simulates_nothing(self, tmp_path, sweep_config):
        store = ResultStore(tmp_path)
        kwargs = dict(seeds=[1], config=sweep_config, store=store)
        cold = run_sweep(["ft"], ["shared", "model-based"], **kwargs)
        assert cold.simulated == 2
        warm = run_sweep(["ft"], ["shared", "model-based"], **kwargs)
        assert warm.simulated == 0
        assert warm.store_hits == 2
        # identical aggregates either way
        assert warm.mean_speedup("ft", "model-based") == pytest.approx(
            cold.mean_speedup("ft", "model-based")
        )

    def test_failed_cells_are_reported_not_raised(self, sweep_config):
        def boom(spec):
            raise RuntimeError("injected")

        engine = SerialEngine(max_retries=0, backoff_s=0.0, job_runner=boom)
        result = run_sweep(["ft"], ["shared"], config=sweep_config, engine=engine)
        assert len(result.failures) == 1
        assert result.simulated == 0
        assert "injected" in result.failures[0].error
        assert "failed cells" in result.format()

    def test_baseline_validation(self, sweep_config):
        with pytest.raises(ValueError):
            run_sweep(["ft"], ["shared"], config=sweep_config, baseline="model-based")
        with pytest.raises(ValueError):
            run_sweep([], ["shared"], config=sweep_config)

    def test_format_and_to_dict(self, sweep_config):
        result = run_sweep(["ft"], ["shared", "static-equal"], config=sweep_config)
        text = result.format()
        assert "sweep:" in text
        assert "static-equal vs shared" in text
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["baseline"] == "shared"
        assert payload["n_failures"] == 0
        assert len(payload["cells"]) == 2
        assert "static-equal" in payload["mean_speedups"]

    def test_thread_count_axis(self, sweep_config):
        result = run_sweep(
            ["ft"],
            ["shared"],
            thread_counts=[2, 4],
            config=sweep_config,
        )
        assert sorted(c.n_threads for c in result.cells) == [2, 4]


def _fail_baseline_seed1(spec):
    """Module-level so pool engines could pickle it: the baseline (shared)
    run fails at seed 1, everything else succeeds."""
    if spec.policy == "shared" and spec.config.seed == 1:
        raise RuntimeError("baseline down")
    return run_application(spec.app, spec.policy, spec.config)


class TestBaselineMissing:
    def test_failed_baseline_cell_excluded_from_aggregates(self, sweep_config):
        """Regression: a grid point whose *baseline* failed must not poison
        (or silently shrink) the speedup aggregates — it is excluded and
        counted."""
        engine = SerialEngine(max_retries=0, backoff_s=0.0, job_runner=_fail_baseline_seed1)
        result = run_sweep(
            ["ft"],
            ["shared", "static-equal"],
            seeds=[1, 2],
            config=sweep_config,
            engine=engine,
        )
        # seed 1's baseline failed: only seed 2 contributes a speedup.
        assert len(result.failures) == 1
        assert result.baseline_missing == 1
        assert len(result.speedups("ft", "static-equal")) == 1
        clean = run_sweep(
            ["ft"], ["shared", "static-equal"], seeds=[2], config=sweep_config
        )
        assert result.mean_speedup("ft", "static-equal") == pytest.approx(
            clean.mean_speedup("ft", "static-equal")
        )
        assert "baseline-missing grid points: 1" in result.format()
        assert result.to_dict()["baseline_missing"] == 1

    def test_every_baseline_failed_means_no_speedups(self, sweep_config):
        def kill_shared(spec):
            if spec.policy == "shared":
                raise RuntimeError("baseline down")
            return run_application(spec.app, spec.policy, spec.config)

        engine = SerialEngine(max_retries=0, backoff_s=0.0, job_runner=kill_shared)
        result = run_sweep(
            ["ft"], ["shared", "static-equal"], config=sweep_config, engine=engine
        )
        assert result.mean_speedup("ft", "static-equal") is None
        assert result.policy_mean_speedup("static-equal") is None
        assert result.baseline_missing == 1
        assert "n/a" in result.format()


class TestSweepJournal:
    def test_sweep_writes_journal_and_resume_recomputes_nothing(
        self, tmp_path, sweep_config
    ):
        path = tmp_path / "sweep.jsonl"
        kwargs = dict(seeds=[1], config=sweep_config, journal=path)
        cold = run_sweep(["ft"], ["shared", "static-equal"], **kwargs)
        assert cold.simulated == 2
        warm = run_sweep(["ft"], ["shared", "static-equal"], resume=True, **kwargs)
        assert warm.simulated == 0
        assert warm.store_hits == 0
        assert warm.resumed == 2
        # The crash-safety contract: aggregates are byte-identical.
        assert json.dumps(warm.aggregates(), sort_keys=True) == json.dumps(
            cold.aggregates(), sort_keys=True
        )

    def test_resume_reattempts_failed_cells(self, tmp_path, sweep_config):
        path = tmp_path / "sweep.jsonl"
        engine = SerialEngine(max_retries=0, backoff_s=0.0, job_runner=_fail_baseline_seed1)
        kwargs = dict(seeds=[1], config=sweep_config, journal=path)
        broken = run_sweep(["ft"], ["shared", "static-equal"], engine=engine, **kwargs)
        assert len(broken.failures) == 1
        fixed = run_sweep(["ft"], ["shared", "static-equal"], resume=True, **kwargs)
        assert not fixed.failures
        assert fixed.resumed == 1  # the cell that succeeded first time
        assert fixed.simulated == 1  # the failed baseline, re-attempted

    def test_store_hits_are_journaled_with_store_source(self, tmp_path, sweep_config):
        from repro.exec.journal import SweepJournal
        from repro.exec.store import ResultStore

        store = ResultStore(tmp_path / "store")
        path = tmp_path / "sweep.jsonl"
        run_sweep(["ft"], ["shared"], seeds=[1], config=sweep_config, store=store)
        hit = run_sweep(
            ["ft"], ["shared"], seeds=[1], config=sweep_config, store=store, journal=path
        )
        assert hit.store_hits == 1
        _, entries, _ = SweepJournal.load(path)
        assert [e.source for e in entries.values()] == ["store"]
        # Resume restores the original source, keeping aggregates identical.
        resumed = run_sweep(
            ["ft"],
            ["shared"],
            seeds=[1],
            config=sweep_config,
            store=store,
            journal=path,
            resume=True,
        )
        assert resumed.resumed == 1
        assert resumed.cells[0].source == "store"

    def test_resume_without_journal_rejected(self, sweep_config):
        with pytest.raises(ValueError, match="needs a journal"):
            run_sweep(["ft"], ["shared"], config=sweep_config, resume=True)
