"""Tests for repro.exec.sweep: grid expansion, store reuse, aggregation."""

from __future__ import annotations

import json

import pytest

from repro.exec.engine import SerialEngine
from repro.exec.store import ResultStore
from repro.exec.sweep import run_sweep
from repro.sim.driver import run_application


@pytest.fixture
def sweep_config(tiny_config):
    return tiny_config


class TestRunSweep:
    def test_grid_shape_and_aggregates(self, sweep_config):
        result = run_sweep(
            ["ft", "cg"],
            ["shared", "model-based"],
            seeds=[1, 2],
            config=sweep_config,
        )
        assert result.n_jobs == 2 * 2 * 2
        assert result.baseline == "shared"
        assert result.simulated == 8
        assert result.store_hits == 0
        assert not result.failures
        # speedup agrees with a direct A/B on the same config
        dyn = run_application("ft", "model-based", sweep_config.with_(seed=1))
        base = run_application("ft", "shared", sweep_config.with_(seed=1))
        expected = base.total_cycles / dyn.total_cycles - 1.0
        assert result.speedups("ft", "model-based")[0] == pytest.approx(expected)
        assert result.mean_speedup("ft", "model-based") is not None
        assert result.policy_mean_speedup("model-based") is not None

    def test_store_warm_start_simulates_nothing(self, tmp_path, sweep_config):
        store = ResultStore(tmp_path)
        kwargs = dict(seeds=[1], config=sweep_config, store=store)
        cold = run_sweep(["ft"], ["shared", "model-based"], **kwargs)
        assert cold.simulated == 2
        warm = run_sweep(["ft"], ["shared", "model-based"], **kwargs)
        assert warm.simulated == 0
        assert warm.store_hits == 2
        # identical aggregates either way
        assert warm.mean_speedup("ft", "model-based") == pytest.approx(
            cold.mean_speedup("ft", "model-based")
        )

    def test_failed_cells_are_reported_not_raised(self, sweep_config):
        def boom(spec):
            raise RuntimeError("injected")

        engine = SerialEngine(max_retries=0, backoff_s=0.0, job_runner=boom)
        result = run_sweep(["ft"], ["shared"], config=sweep_config, engine=engine)
        assert len(result.failures) == 1
        assert result.simulated == 0
        assert "injected" in result.failures[0].error
        assert "failed cells" in result.format()

    def test_baseline_validation(self, sweep_config):
        with pytest.raises(ValueError):
            run_sweep(["ft"], ["shared"], config=sweep_config, baseline="model-based")
        with pytest.raises(ValueError):
            run_sweep([], ["shared"], config=sweep_config)

    def test_format_and_to_dict(self, sweep_config):
        result = run_sweep(["ft"], ["shared", "static-equal"], config=sweep_config)
        text = result.format()
        assert "sweep:" in text
        assert "static-equal vs shared" in text
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["baseline"] == "shared"
        assert payload["n_failures"] == 0
        assert len(payload["cells"]) == 2
        assert "static-equal" in payload["mean_speedups"]

    def test_thread_count_axis(self, sweep_config):
        result = run_sweep(
            ["ft"],
            ["shared"],
            thread_counts=[2, 4],
            config=sweep_config,
        )
        assert sorted(c.n_threads for c in result.cells) == [2, 4]
