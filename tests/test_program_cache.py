"""Tests for the bounded (LRU) compiled-program cache in repro.sim.driver."""

import pytest

from repro.obs import METRICS
from repro.sim import driver
from repro.trace.workloads import list_workloads


@pytest.fixture(autouse=True)
def _isolated_cache():
    driver.clear_program_cache()
    yield
    driver.set_program_cache_limit(driver.DEFAULT_PROGRAM_CACHE_LIMIT)
    driver.clear_program_cache()


def _prepare(app, config):
    return driver.prepare_program(app, config)


class TestProgramCacheLRU:
    def test_hit_returns_same_object_and_counts(self, quick_config):
        first = _prepare("swim", quick_config)
        assert METRICS.counter("sim.program_cache.misses").value == 1
        second = _prepare("swim", quick_config)
        assert second is first
        assert METRICS.counter("sim.program_cache.hits").value == 1

    def test_cache_never_exceeds_limit(self, quick_config):
        driver.set_program_cache_limit(2)
        apps = list_workloads()[:4]
        for app in apps:
            _prepare(app, quick_config)
        assert len(driver._PROGRAM_CACHE) == 2
        assert METRICS.counter("sim.program_cache.evictions").value == 2
        assert METRICS.gauge("sim.program_cache.size").value == 2

    def test_eviction_is_least_recently_used(self, quick_config):
        driver.set_program_cache_limit(2)
        a, b, c = list_workloads()[:3]
        _prepare(a, quick_config)
        _prepare(b, quick_config)
        _prepare(a, quick_config)  # refresh a: b is now the LRU entry
        _prepare(c, quick_config)  # evicts b
        misses_before = METRICS.counter("sim.program_cache.misses").value
        _prepare(a, quick_config)
        assert METRICS.counter("sim.program_cache.misses").value == misses_before
        _prepare(b, quick_config)  # must recompile
        assert METRICS.counter("sim.program_cache.misses").value == misses_before + 1

    def test_lowering_the_limit_trims_immediately(self, quick_config):
        for app in list_workloads()[:3]:
            _prepare(app, quick_config)
        assert len(driver._PROGRAM_CACHE) == 3
        driver.set_program_cache_limit(1)
        assert len(driver._PROGRAM_CACHE) == 1

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            driver.set_program_cache_limit(0)

    def test_clear_resets_size_gauge(self, quick_config):
        _prepare("swim", quick_config)
        driver.clear_program_cache()
        assert len(driver._PROGRAM_CACHE) == 0
        assert METRICS.gauge("sim.program_cache.size").value == 0
