"""Tests for the thread-migration resilience experiment."""

import json

import pytest

from repro.cache.geometry import CacheGeometry
from repro.experiments.migration import _migration_profile, migration_resilience
from repro.sim.config import SystemConfig


@pytest.fixture(scope="module")
def cfg():
    return SystemConfig(
        n_threads=4,
        l2_geometry=CacheGeometry(sets=16, ways=16),
        interval_instructions=6_000,
        n_intervals=16,
        sections_per_interval=2,
    )


class TestProfile:
    def test_behaviours_swap(self):
        profile = _migration_profile(flip_at=5, n_intervals=10)
        from repro.trace.behavior import behavior_schedule

        sched = behavior_schedule(
            list(profile.behaviors_for(4)), list(profile.phases), 10
        )
        before = sched[0]
        after = sched[9]
        # ws of threads 0 and 1 swap (within rounding).
        assert after[0].ws_lines == pytest.approx(before[1].ws_lines, rel=0.02)
        assert after[1].ws_lines == pytest.approx(before[0].ws_lines, rel=0.02)


class TestExperiment:
    def test_runs_and_serialises(self, cfg):
        res = migration_resilience(cfg, flip_at=8)
        assert res.flip_interval == 8
        assert res.dyn_cycles > 0
        assert len(res.targets_trace) >= cfg.n_intervals - 1
        json.dumps(res.to_dict())
        assert "migration at interval 8" in res.format()

    def test_capacity_flows_toward_migrated_thread(self, cfg):
        """At this small scale the strict largest-share criterion needs
        more post-flip intervals than the test budget allows (the bench
        asserts it at full scale); here we require clear directional
        recovery: capacity moves from core 0 to core 1 after the swap."""
        res = migration_resilience(cfg, flip_at=8)
        at_flip = res.targets_trace[8]
        final = res.targets_trace[-1]
        assert final[1] >= at_flip[1] + 3
        assert final[0] <= at_flip[0] - 3

    def test_invalid_flip(self, cfg):
        with pytest.raises(ValueError):
            migration_resilience(cfg, flip_at=0)
        with pytest.raises(ValueError):
            migration_resilience(cfg, flip_at=999)
