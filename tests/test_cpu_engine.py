"""Tests for the event-driven CMP engine."""

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.shared import PartitionedSharedCache
from repro.cpu.engine import CMPEngine
from repro.cpu.streams import CompiledProgram, L2Stream
from repro.cpu.timing import TimingModel
from repro.partition.cpi import CPIProportionalPolicy
from repro.partition.static import StaticEqualPolicy
from repro.core.runtime import RuntimeSystem


def stream(addrs, d_instr=None, d_cycles=None, tail_i=0, tail_c=0.0, timing=None):
    timing = timing or TimingModel()
    addrs = np.asarray(addrs, dtype=np.int64)
    n = addrs.size
    d_instr = np.asarray(d_instr if d_instr is not None else [10] * n, dtype=np.int64)
    d_cycles = np.asarray(d_cycles if d_cycles is not None else [10.0] * n, dtype=np.float64)
    return L2Stream(
        addresses=addrs,
        d_instructions=d_instr,
        d_cycles=d_cycles,
        miss_cycles=np.full(n, timing.mem_cycles),
        tail_instructions=tail_i,
        tail_cycles=tail_c,
        total_instructions=int(d_instr.sum()) + tail_i,
        l1_accesses=n,
        l1_hits=0,
    )


def compiled_of(sections, name="test"):
    return CompiledProgram(
        name=name, n_threads=len(sections[0]), sections=tuple(tuple(s) for s in sections),
        meta={},
    )


@pytest.fixture
def geo():
    return CacheGeometry(sets=4, ways=4, line_bytes=64)


@pytest.fixture
def timing():
    return TimingModel()


class TestBasicExecution:
    def test_single_thread_cycle_accounting(self, geo, timing):
        # Two accesses to different lines: both L2 misses.
        c = compiled_of([[stream([0, 64])]])
        l2 = PartitionedSharedCache(geo, 1, enforce_partition=False)
        r = CMPEngine(c, l2, timing, None, interval_instructions=1000).run()
        expected = 2 * 10.0 + 2 * timing.mem_cycles
        assert r.total_cycles == pytest.approx(expected)
        assert r.thread_instructions == (20,)

    def test_l2_hit_costs_less(self, geo, timing):
        c = compiled_of([[stream([0, 0])]])  # second access hits in L2
        l2 = PartitionedSharedCache(geo, 1, enforce_partition=False)
        r = CMPEngine(c, l2, timing, None, interval_instructions=1000).run()
        expected = 2 * 10.0 + timing.mem_cycles + timing.l2_hit_cycles
        assert r.total_cycles == pytest.approx(expected)

    def test_tail_work_accounted(self, geo, timing):
        c = compiled_of([[stream([0], tail_i=50, tail_c=70.0)]])
        l2 = PartitionedSharedCache(geo, 1, enforce_partition=False)
        r = CMPEngine(c, l2, timing, None, interval_instructions=10_000).run()
        assert r.thread_instructions == (60,)
        assert r.total_cycles == pytest.approx(10.0 + timing.mem_cycles + 70.0)

    def test_barrier_synchronises_to_slowest(self, geo, timing):
        # Thread 0: cheap; thread 1: expensive.
        fast = stream([0], d_cycles=[5.0])
        slow = stream([64], d_cycles=[500.0])
        c = compiled_of([[fast, slow]])
        l2 = PartitionedSharedCache(geo, 2)
        r = CMPEngine(c, l2, timing, None, interval_instructions=10_000).run()
        assert r.total_cycles == pytest.approx(500.0 + timing.mem_cycles)
        # Fast thread stalls for the difference.
        assert r.thread_stall_cycles[0] == pytest.approx(495.0)
        assert r.thread_stall_cycles[1] == 0.0
        assert r.barriers.critical_thread_histogram() == [0, 1]

    def test_sections_resume_synchronised(self, geo, timing):
        s1 = [stream([0], d_cycles=[5.0]), stream([64], d_cycles=[100.0])]
        s2 = [stream([128], d_cycles=[5.0]), stream([192], d_cycles=[5.0])]
        c = compiled_of([s1, s2])
        l2 = PartitionedSharedCache(geo, 2)
        r = CMPEngine(c, l2, timing, None, interval_instructions=10_000).run()
        # After the first barrier both threads restart at the same cycle.
        assert len(r.barriers.events) == 2

    def test_interleaving_by_clock(self, geo, timing):
        """The slower thread's accesses interleave after the faster one's."""
        order = []

        class SpyCache(PartitionedSharedCache):
            def access(self, thread, addr):
                order.append(thread)
                return super().access(thread, addr)

        fast = stream([0, 64, 128], d_cycles=[1.0, 1.0, 1.0])
        slow = stream([256, 320, 384], d_cycles=[1000.0, 1000.0, 1000.0])
        c = compiled_of([[fast, slow]])
        l2 = SpyCache(geo, 2)
        CMPEngine(c, l2, timing, None, interval_instructions=10_000).run()
        # Thread 0 should finish all its accesses before thread 1's second.
        assert order.index(1) < len(order)
        assert order.count(0) == 3
        first_t1 = order.index(1)
        assert order[first_t1 + 1 :].count(0) >= 2  # t0 continues while t1 crawls

    def test_thread_count_mismatch_rejected(self, geo, timing):
        c = compiled_of([[stream([0])]])
        l2 = PartitionedSharedCache(geo, 2)
        with pytest.raises(ValueError):
            CMPEngine(c, l2, timing, None)

    def test_invalid_interval_rejected(self, geo, timing):
        c = compiled_of([[stream([0])]])
        l2 = PartitionedSharedCache(geo, 1, enforce_partition=False)
        with pytest.raises(ValueError):
            CMPEngine(c, l2, timing, None, interval_instructions=0)


class TestIntervalsAndRuntime:
    def test_intervals_fire_on_instruction_boundaries(self, geo, timing):
        # 10 accesses x 10 instructions = 100 instructions; tick every
        # 20 instr x 1 thread -> 5 intervals.
        c = compiled_of([[stream(np.arange(10) * 64)]])
        l2 = PartitionedSharedCache(geo, 1, enforce_partition=False)
        r = CMPEngine(c, l2, timing, None, interval_instructions=20).run()
        assert len(r.intervals) == 5
        for rec in r.intervals:
            assert sum(rec.observation.instructions) == 20

    def test_final_partial_interval_flushed(self, geo, timing):
        c = compiled_of([[stream(np.arange(5) * 64)]])  # 50 instructions
        l2 = PartitionedSharedCache(geo, 1, enforce_partition=False)
        r = CMPEngine(c, l2, timing, None, interval_instructions=40).run()
        assert len(r.intervals) == 2
        assert sum(sum(rec.observation.instructions) for rec in r.intervals) == 50

    def test_runtime_decides_and_engine_applies(self, geo, timing):
        streams = [stream(np.arange(20) * 64), stream(np.arange(20) * 64 + 4096)]
        c = compiled_of([streams])
        policy = CPIProportionalPolicy(2, geo.ways)
        runtime = RuntimeSystem(policy)
        l2 = PartitionedSharedCache(geo, 2, targets=runtime.initial_targets())
        r = CMPEngine(c, l2, timing, runtime, interval_instructions=50).run()
        assert runtime.invocations >= 1
        assert all(
            rec.new_targets is None or sum(rec.new_targets) == geo.ways
            for rec in r.intervals
        )
        assert r.policy == "cpi-proportional"

    def test_static_policy_never_changes_targets(self, geo, timing):
        streams = [stream(np.arange(10) * 64), stream(np.arange(10) * 64 + 4096)]
        c = compiled_of([streams])
        runtime = RuntimeSystem(StaticEqualPolicy(2, geo.ways))
        l2 = PartitionedSharedCache(geo, 2, targets=runtime.initial_targets())
        r = CMPEngine(c, l2, timing, runtime, interval_instructions=40).run()
        assert all(rec.new_targets is None for rec in r.intervals)
        assert l2.targets == [2, 2]

    def test_partition_overhead_charged(self, geo):
        timing = TimingModel(partition_overhead_cycles=1000.0)
        streams = [stream(np.arange(10) * 64), stream(np.arange(10) * 64 + 4096)]
        runtime = RuntimeSystem(CPIProportionalPolicy(2, geo.ways))
        l2 = PartitionedSharedCache(geo, 2, targets=runtime.initial_targets())
        r1 = CMPEngine(compiled_of([streams]), l2, timing, runtime,
                       interval_instructions=50).run()
        # Same program without a runtime: cheaper by >= one overhead.
        l2b = PartitionedSharedCache(geo, 2)
        r2 = CMPEngine(compiled_of([streams]), l2b, timing, None,
                       interval_instructions=50).run()
        assert r1.total_cycles >= r2.total_cycles + 1000.0

    def test_busy_cpi_excludes_stall(self, geo, timing):
        fast = stream([0], d_instr=[100], d_cycles=[10.0])
        slow = stream([64], d_instr=[100], d_cycles=[5000.0])
        c = compiled_of([[fast, slow]])
        l2 = PartitionedSharedCache(geo, 2)
        r = CMPEngine(c, l2, timing, None, interval_instructions=100).run()
        # Thread 0 busy CPI must reflect only its own 10 + mem cycles,
        # not the barrier wait.
        cpi0 = r.thread_cpi(0)
        assert cpi0 == pytest.approx((10.0 + timing.mem_cycles) / 100)

    def test_l1_totals_propagated(self, geo, timing):
        c = compiled_of([[stream([0, 64])]])
        l2 = PartitionedSharedCache(geo, 1, enforce_partition=False)
        r = CMPEngine(c, l2, timing, None, interval_instructions=1000).run()
        assert r.thread_l1_accesses == (2,)
        assert r.thread_l1_hits == (0,)
