"""Protocol layer: request validation and content-addressed sweep identity."""

from __future__ import annotations

import pytest

from repro.exec.journal import grid_digest
from repro.exec.sweep import expand_grid, grid_key
from repro.serve.protocol import RequestError, SweepRequest, cell_event, status_event

TINY = {
    "apps": ["ft"],
    "policies": ["shared", "static-equal"],
    "intervals": 3,
    "interval_instructions": 2000,
}


class TestValidation:
    def test_minimal_request_parses_with_defaults(self):
        req = SweepRequest.from_dict(TINY)
        assert req.apps == ("ft",)
        assert req.policies == ("shared", "static-equal")
        assert req.seeds == (1,)
        assert req.thread_counts == (4,)
        assert req.baseline == "shared"
        assert req.client == "anonymous"
        assert req.resume is True

    def test_non_object_body_rejected(self):
        with pytest.raises(RequestError, match="JSON object"):
            SweepRequest.from_dict([1, 2, 3])

    def test_missing_apps_rejected(self):
        with pytest.raises(RequestError, match="'apps'"):
            SweepRequest.from_dict({"policies": ["shared"]})

    def test_unknown_workload_rejected_with_known_list(self):
        with pytest.raises(RequestError, match="unknown workloads: nope"):
            SweepRequest.from_dict({**TINY, "apps": ["nope"]})

    def test_unknown_policy_rejected(self):
        with pytest.raises(RequestError, match="unknown policies: bogus"):
            SweepRequest.from_dict({**TINY, "policies": ["bogus"]})

    def test_baseline_must_be_swept(self):
        with pytest.raises(RequestError, match="baseline 'model-based' is not among"):
            SweepRequest.from_dict({**TINY, "baseline": "model-based"})

    def test_baseline_defaults_to_first_policy_without_shared(self):
        req = SweepRequest.from_dict({**TINY, "policies": ["static-equal", "throughput"]})
        assert req.baseline == "static-equal"

    def test_bad_seed_list_rejected(self):
        with pytest.raises(RequestError, match="'seeds'"):
            SweepRequest.from_dict({**TINY, "seeds": ["one"]})

    def test_bool_not_accepted_as_int(self):
        with pytest.raises(RequestError, match="'seeds'"):
            SweepRequest.from_dict({**TINY, "seeds": [True]})

    def test_zero_thread_count_rejected(self):
        with pytest.raises(RequestError, match="'thread_counts'"):
            SweepRequest.from_dict({**TINY, "thread_counts": [0]})

    def test_bad_backend_rejected(self):
        with pytest.raises(RequestError, match="cache_backend"):
            SweepRequest.from_dict({**TINY, "cache_backend": "magic"})

    def test_empty_client_rejected(self):
        with pytest.raises(RequestError, match="'client'"):
            SweepRequest.from_dict({**TINY, "client": ""})

    def test_bad_intervals_rejected(self):
        with pytest.raises(RequestError, match="'intervals'"):
            SweepRequest.from_dict({**TINY, "intervals": 0})


class TestIdentity:
    def test_sweep_id_matches_journal_grid_digest(self):
        """The service's sweep id IS the digest `repro sweep --journal`
        stamps in its header — one identity across both entry points."""
        req = SweepRequest.from_dict(TINY)
        key = grid_key(
            req.apps, req.policies, req.seeds, req.thread_counts,
            req.baseline, req.config(),
        )
        assert req.sweep_id == grid_digest(key)

    def test_identical_payloads_share_an_id(self):
        assert SweepRequest.from_dict(TINY).sweep_id == SweepRequest.from_dict(TINY).sweep_id

    def test_client_and_resume_do_not_change_identity(self):
        a = SweepRequest.from_dict({**TINY, "client": "alice"})
        b = SweepRequest.from_dict({**TINY, "client": "bob", "resume": False})
        assert a.sweep_id == b.sweep_id

    def test_grid_changes_change_the_id(self):
        base = SweepRequest.from_dict(TINY).sweep_id
        assert SweepRequest.from_dict({**TINY, "seeds": [2]}).sweep_id != base
        assert SweepRequest.from_dict({**TINY, "intervals": 4}).sweep_id != base
        assert (
            SweepRequest.from_dict({**TINY, "cache_backend": "reference"}).sweep_id != base
        )

    def test_specs_are_the_canonical_grid_expansion(self):
        req = SweepRequest.from_dict({**TINY, "seeds": [1, 2], "thread_counts": [2, 4]})
        expected = expand_grid(
            req.apps, req.policies, req.seeds, req.thread_counts, req.config()
        )
        assert [s.digest for s in req.specs()] == [s.digest for s in expected]
        assert req.n_cells == len(expected) == 8


class TestEvents:
    def test_cell_event_shape(self):
        from repro.exec.sweep import SweepCell

        cell = SweepCell(app="ft", policy="shared", seed=1, n_threads=4,
                         total_cycles=123.0, source="run")
        event = cell_event(cell, key="abc", completed=1, total=4)
        assert event["event"] == "cell"
        assert event["ok"] is True
        assert event["completed"] == 1 and event["total"] == 4
        assert event["replayed"] is False

    def test_status_event_passthrough(self):
        event = status_event({"sweep_id": "x", "status": "done"})
        assert event == {"event": "status", "sweep_id": "x", "status": "done"}
