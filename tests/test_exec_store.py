"""Tests for repro.exec: job specs and the content-addressed result store."""

from __future__ import annotations

import dataclasses
import json
import multiprocessing

from repro.exec.jobs import JobSpec
from repro.exec.store import ResultStore
from repro.sim.config import SystemConfig
from repro.sim.driver import run_application


def spec_for(config, app="ft", policy="shared"):
    return JobSpec(app, policy, config)


class TestJobSpec:
    def test_digest_is_stable_and_content_addressed(self, tiny_config):
        a = spec_for(tiny_config)
        b = spec_for(tiny_config)
        assert a.digest == b.digest
        assert len(a.digest) == 64

    def test_digest_changes_with_any_component(self, tiny_config):
        base = spec_for(tiny_config)
        assert spec_for(tiny_config, app="cg").digest != base.digest
        assert spec_for(tiny_config, policy="model-based").digest != base.digest
        assert spec_for(tiny_config.with_(seed=7)).digest != base.digest
        assert spec_for(tiny_config.with_(min_ways=0)).digest != base.digest

    def test_canonical_json_is_deterministic(self, tiny_config):
        s = spec_for(tiny_config)
        assert s.canonical_json() == s.canonical_json()
        # sorted keys: a re-parse + re-dump must be identity
        parsed = json.loads(s.canonical_json())
        assert json.dumps(parsed, sort_keys=True, separators=(",", ":")) == s.canonical_json()

    def test_config_to_dict_covers_every_field(self):
        """The store key must enumerate every SystemConfig field — a new
        field that is not serialised would alias distinct configs."""
        d = SystemConfig.default().to_dict()
        assert set(d) == {f.name for f in dataclasses.fields(SystemConfig)}


class TestResultStore:
    def test_miss_then_hit_roundtrip(self, tmp_path, tiny_config):
        store = ResultStore(tmp_path)
        spec = spec_for(tiny_config)
        assert store.get(spec) is None
        assert store.stats() == {
            "hits": 0, "misses": 1, "writes": 0, "corrupt": 0, "stale_swept": 0,
        }

        result = run_application(spec.app, spec.policy, spec.config)
        path = store.put(spec, result)
        assert path.is_file()
        assert spec in store
        assert len(store) == 1

        loaded = store.get(spec)
        assert loaded == result
        assert store.stats() == {
            "hits": 1, "misses": 1, "writes": 1, "corrupt": 0, "stale_swept": 0,
        }

    def test_corrupt_entry_recovers_as_miss(self, tmp_path, tiny_config):
        store = ResultStore(tmp_path)
        spec = spec_for(tiny_config)
        result = run_application(spec.app, spec.policy, spec.config)
        path = store.put(spec, result)

        path.write_text("{ not json", encoding="utf-8")
        assert store.get(spec) is None
        assert not path.exists(), "corrupt entry must be evicted"
        assert store.corrupt == 1

        # the next put/get cycle works again
        store.put(spec, result)
        assert store.get(spec) == result

    def test_mis_keyed_entry_is_corruption(self, tmp_path, tiny_config):
        store = ResultStore(tmp_path)
        spec = spec_for(tiny_config)
        other = spec_for(tiny_config, app="cg")
        result = run_application(spec.app, spec.policy, spec.config)
        # file a result under the wrong digest (simulates tampering/collision)
        payload_path = store.path_for(other)
        payload_path.parent.mkdir(parents=True, exist_ok=True)
        store.put(spec, result)
        payload_path.write_bytes(store.path_for(spec).read_bytes())
        assert store.get(other) is None
        assert store.corrupt == 1

    def test_version_namespaces_are_disjoint(self, tmp_path, tiny_config):
        spec = spec_for(tiny_config)
        result = run_application(spec.app, spec.policy, spec.config)
        old = ResultStore(tmp_path, version="0.9.0")
        old.put(spec, result)

        new = ResultStore(tmp_path, version="1.0.0")
        assert new.get(spec) is None, "a version bump must invalidate the store"
        assert len(new) == 0
        assert len(old) == 1

    def test_clear_removes_current_version_only(self, tmp_path, tiny_config):
        spec = spec_for(tiny_config)
        result = run_application(spec.app, spec.policy, spec.config)
        old = ResultStore(tmp_path, version="0.9.0")
        old.put(spec, result)
        new = ResultStore(tmp_path, version="1.0.0")
        new.put(spec, result)
        assert new.clear() == 1
        assert len(new) == 0
        assert len(old) == 1

    def test_default_version_tracks_package(self, tmp_path):
        import repro

        store = ResultStore(tmp_path)
        assert store.version == repro.__version__
        assert store.version_dir.name == f"v{repro.__version__}"

    def test_no_stray_tmp_files_after_put(self, tmp_path, tiny_config):
        store = ResultStore(tmp_path)
        spec = spec_for(tiny_config)
        store.put(spec, run_application(spec.app, spec.policy, spec.config))
        stray = [p for p in tmp_path.rglob("*") if p.is_file() and p.suffix != ".json"]
        assert stray == []

    def test_put_survives_concurrent_clear(self, tmp_path, tiny_config, monkeypatch):
        """A clear() that rmtree-s the shard between staging and publish
        must not lose the put: it restages and lands the entry."""
        import os as _os
        import shutil

        store = ResultStore(tmp_path)
        spec = spec_for(tiny_config)
        result = run_application(spec.app, spec.policy, spec.config)
        real_replace = _os.replace
        state = {"fired": False}

        def sabotaging_replace(src, dst):
            if not state["fired"]:
                state["fired"] = True
                shutil.rmtree(store.path_for(spec).parent)
                # The staged file went with the shard; this call raises
                # FileNotFoundError and put() restages.
            return real_replace(src, dst)

        monkeypatch.setattr("repro.exec.store.os.replace", sabotaging_replace)
        store.put(spec, result)
        assert state["fired"]
        assert store.get(spec) == result


def _hammer_result_store(root, barrier, out) -> None:
    config = SystemConfig(
        n_threads=4,
        interval_instructions=1_500,
        n_intervals=5,
        sections_per_interval=2,
    )
    spec = JobSpec("ft", "shared", config)
    result = run_application(spec.app, spec.policy, spec.config)
    store = ResultStore(root, version="race")
    barrier.wait()  # maximise overlap: everyone publishes at once
    store.put(spec, result)
    loaded = store.get(spec)
    out.put((loaded == result, store.stats()))


class TestConcurrentWriters:
    def test_eight_processes_hammer_one_key(self, tmp_path, tiny_config):
        """Eight processes racing put() on one digest: exactly one valid
        artifact survives, every reader sees a complete payload, and no
        staging files leak."""
        ctx = multiprocessing.get_context("spawn")
        barrier = ctx.Barrier(8)
        out = ctx.Queue()
        procs = [
            ctx.Process(target=_hammer_result_store, args=(str(tmp_path), barrier, out))
            for _ in range(8)
        ]
        for p in procs:
            p.start()
        results = [out.get(timeout=120) for _ in procs]
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        assert all(ok for ok, _ in results), "every process must read back a valid result"

        store = ResultStore(tmp_path, version="race")
        assert len(store) == 1, "a single artifact must survive the race"
        spec = JobSpec(
            "ft",
            "shared",
            SystemConfig(
                n_threads=4,
                interval_instructions=1_500,
                n_intervals=5,
                sections_per_interval=2,
            ),
        )
        entry = store.path_for(spec)
        assert entry.is_file()
        payload = json.loads(entry.read_text(encoding="utf-8"))  # complete JSON
        assert payload["digest"] == spec.digest
        assert store.get(spec) is not None
        stray = [p for p in tmp_path.rglob(".put-*")]
        assert stray == [], "no staging files may leak"


class TestStaleSweep:
    """Hard-killed writers leave ``.put-*.tmp`` staging files behind; the
    startup sweep reclaims them once they age past the TTL."""

    def _orphan(self, store: ResultStore, age_s: float) -> "object":
        import os
        import tempfile
        import time

        shard = store.version_dir / "ab"
        shard.mkdir(parents=True, exist_ok=True)
        fd, name = tempfile.mkstemp(dir=shard, prefix=".put-", suffix=".tmp")
        os.close(fd)
        stamp = time.time() - age_s
        os.utime(name, (stamp, stamp))
        return name

    def test_old_orphans_swept_at_startup(self, tmp_path):
        import os

        first = ResultStore(tmp_path, stale_ttl_s=100.0)
        orphan = self._orphan(first, age_s=500.0)
        reopened = ResultStore(tmp_path, stale_ttl_s=100.0)
        assert not os.path.exists(orphan)
        assert reopened.stale_swept == 1
        assert reopened.stats()["stale_swept"] == 1

    def test_fresh_staging_files_survive(self, tmp_path):
        import os

        first = ResultStore(tmp_path, stale_ttl_s=100.0)
        live = self._orphan(first, age_s=0.0)
        reopened = ResultStore(tmp_path, stale_ttl_s=100.0)
        assert os.path.exists(live)
        assert reopened.stale_swept == 0

    def test_explicit_sweep_with_zero_ttl(self, tmp_path):
        import os

        from repro.obs.metrics import METRICS

        store = ResultStore(tmp_path)
        live = self._orphan(store, age_s=0.0)
        assert store.sweep_stale(0.0) == 1
        assert not os.path.exists(live)
        assert METRICS.snapshot()["counters"]["store.stale_swept"] == 1
