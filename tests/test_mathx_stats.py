"""Tests for correlation and smoothing helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mathx.stats import pearson_correlation, running_mean


class TestPearson:
    def test_perfect_positive(self):
        assert pearson_correlation([1, 2, 3, 4], [2, 4, 6, 8]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_correlation([1, 2, 3, 4], [8, 6, 4, 2]) == pytest.approx(-1.0)

    def test_matches_numpy(self):
        rng = np.random.default_rng(7)
        a = rng.random(50)
        b = 0.6 * a + 0.4 * rng.random(50)
        assert pearson_correlation(a, b) == pytest.approx(np.corrcoef(a, b)[0, 1])

    def test_zero_variance_returns_zero(self):
        assert pearson_correlation([3, 3, 3], [1, 2, 3]) == 0.0
        assert pearson_correlation([1, 2, 3], [5, 5, 5]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1, 2, 3])

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            pearson_correlation([1], [2])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, float("nan")], [1, 2])

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=2, max_size=30)
    )
    def test_property_bounded(self, xs):
        ys = [v * 2 + 1 for v in xs]
        r = pearson_correlation(xs, ys)
        assert -1.0 <= r <= 1.0

    def test_symmetric(self):
        a = [1.0, 5.0, 2.0, 8.0]
        b = [2.0, 1.0, 9.0, 3.0]
        assert pearson_correlation(a, b) == pytest.approx(pearson_correlation(b, a))


class TestRunningMean:
    def test_window_one_is_identity(self):
        vals = [1.0, 5.0, 2.0]
        assert np.allclose(running_mean(vals, 1), vals)

    def test_prefix_averages(self):
        out = running_mean([2.0, 4.0, 6.0, 8.0], 2)
        assert np.allclose(out, [2.0, 3.0, 5.0, 7.0])

    def test_window_larger_than_input(self):
        out = running_mean([2.0, 4.0], 10)
        assert np.allclose(out, [2.0, 3.0])

    def test_same_length_output(self):
        assert running_mean(np.arange(17.0), 5).shape == (17,)

    def test_empty_input(self):
        assert running_mean([], 3).size == 0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            running_mean([1.0], 0)

    def test_constant_series_unchanged(self):
        out = running_mean([4.0] * 10, 3)
        assert np.allclose(out, 4.0)
