"""Tests for the hierarchical multi-application stack (paper §VI-C)."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.multiapp.allocator import MissProportionalOSAllocator, StaticOSAllocator
from repro.multiapp.driver import run_coexecution
from repro.multiapp.runtime import AppRuntime
from repro.sim.config import SystemConfig

from .test_partition_policies import make_obs


class TestOSAllocators:
    def test_initial_budgets_proportional_to_threads(self):
        alloc = StaticOSAllocator(2, 32, min_ways_per_app=4)
        assert alloc.initial_budgets([4, 4]) == [16, 16]
        uneven = alloc.initial_budgets([6, 2])
        assert uneven[0] > uneven[1]
        assert sum(uneven) == 32

    def test_static_never_changes(self):
        alloc = StaticOSAllocator(2, 32)
        assert alloc.on_epoch([100, 1], [16, 16]) is None

    def test_miss_proportional_follows_demand(self):
        alloc = MissProportionalOSAllocator(2, 32, min_ways_per_app=4)
        budgets = alloc.on_epoch([300, 100], [16, 16])
        assert budgets[0] > budgets[1]
        assert sum(budgets) == 32

    def test_miss_proportional_smooths(self):
        alloc = MissProportionalOSAllocator(2, 32, min_ways_per_app=4, alpha=0.5)
        b1 = alloc.on_epoch([300, 100], [16, 16])
        # One quiet epoch must not fully reverse the allocation.
        b2 = alloc.on_epoch([0, 100], [16, 16])
        assert b2[0] > 8

    def test_min_ways_per_app(self):
        alloc = MissProportionalOSAllocator(2, 32, min_ways_per_app=8)
        budgets = alloc.on_epoch([10_000, 0], [16, 16])
        assert budgets[1] >= 8

    def test_validation(self):
        with pytest.raises(ValueError):
            StaticOSAllocator(0, 32)
        with pytest.raises(ValueError):
            StaticOSAllocator(4, 8, min_ways_per_app=4)
        with pytest.raises(ValueError):
            MissProportionalOSAllocator(2, 32, alpha=0.0)
        alloc = MissProportionalOSAllocator(2, 32)
        with pytest.raises(ValueError):
            alloc.on_epoch([1], [16, 16])


class TestAppRuntime:
    def test_initial_equal_split_of_budget(self):
        rt = AppRuntime(4, 16)
        assert rt.targets == [4, 4, 4, 4]

    def test_budget_rescale_preserves_shape(self):
        rt = AppRuntime(4, 16)
        rt.targets = [8, 4, 2, 2]
        rt.set_budget(8)
        assert sum(rt.targets) == 8
        assert rt.targets[0] == max(rt.targets)

    def test_budget_growth(self):
        rt = AppRuntime(2, 4)
        rt.targets = [3, 1]
        rt.set_budget(12)
        assert sum(rt.targets) == 12
        assert rt.targets[0] > rt.targets[1]

    def test_budget_too_small_rejected(self):
        rt = AppRuntime(4, 16)
        with pytest.raises(ValueError):
            rt.set_budget(3)

    def test_static_equal_mode(self):
        rt = AppRuntime(2, 8, mode="static-equal")
        out = rt.on_interval(make_obs([9.0, 1.0], [4, 4]))
        assert out == [4, 4]

    def test_model_mode_bootstraps_cpi_proportional(self):
        rt = AppRuntime(2, 8, bootstrap_intervals=2)
        out = rt.on_interval(make_obs([6.0, 2.0], [4, 4], index=0))
        assert out[0] > out[1]
        assert sum(out) == 8

    def test_targets_track_budget_after_interval(self):
        rt = AppRuntime(2, 8)
        rt.on_interval(make_obs([6.0, 2.0], [4, 4], index=0))
        rt.set_budget(12)
        out = rt.on_interval(make_obs([6.0, 2.0], tuple(rt.targets), index=1))
        assert sum(out) == 12

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            AppRuntime(2, 8, mode="chaotic")

    def test_observation_size_checked(self):
        rt = AppRuntime(4, 16)
        with pytest.raises(ValueError):
            rt.on_interval(make_obs([1.0, 2.0], [8, 8]))


@pytest.fixture(scope="module")
def co_config():
    return SystemConfig(
        n_threads=2,  # per app
        l2_geometry=CacheGeometry(sets=16, ways=16),
        interval_instructions=4_000,
        n_intervals=8,
        sections_per_interval=2,
    )


class TestCoexecution:
    def test_all_schemes_run(self, co_config):
        for scheme in ("shared", "os-only", "hierarchical", "hierarchical-static-os"):
            res = run_coexecution(["ft", "equake"], co_config, scheme=scheme,
                                  threads_per_app=2)
            assert len(res.apps) == 2
            assert all(a.completion_cycles > 0 for a in res.apps)
            assert res.total_cycles == max(a.completion_cycles for a in res.apps)

    def test_apps_complete_all_work(self, co_config):
        res = run_coexecution(["ft", "equake"], co_config, threads_per_app=2)
        from repro.sim.driver import prepare_program

        for app_res, name in zip(res.apps, ["ft", "equake"], strict=True):
            compiled = prepare_program(name, co_config.with_(n_threads=2))
            assert sum(app_res.thread_instructions) == compiled.total_instructions

    def test_per_app_intervals_recorded(self, co_config):
        res = run_coexecution(["ft", "equake"], co_config, threads_per_app=2)
        for app_res in res.apps:
            assert len(app_res.intervals) >= co_config.n_intervals - 2
            for obs in app_res.intervals:
                assert len(obs.cpi) == 2

    def test_budget_trace_under_dynamic_os(self, co_config):
        res = run_coexecution(["cg", "ft"], co_config, scheme="hierarchical",
                              threads_per_app=2, os_epoch_intervals=2)
        assert res.budget_trace
        for _, budgets in res.budget_trace:
            assert sum(budgets) == co_config.total_ways

    def test_deterministic(self, co_config):
        r1 = run_coexecution(["ft", "equake"], co_config, threads_per_app=2)
        r2 = run_coexecution(["ft", "equake"], co_config, threads_per_app=2)
        assert [a.completion_cycles for a in r1.apps] == [
            a.completion_cycles for a in r2.apps
        ]

    def test_unknown_scheme_rejected(self, co_config):
        with pytest.raises(ValueError):
            run_coexecution(["ft"], co_config, scheme="anarchy")

    def test_empty_apps_rejected(self, co_config):
        with pytest.raises(ValueError):
            run_coexecution([], co_config)

    def test_too_many_threads_rejected(self, co_config):
        with pytest.raises(ValueError):
            run_coexecution(["ft", "equake", "cg", "mg", "swim", "art", "applu",
                             "mgrid", "wupwise"], co_config, threads_per_app=2)
