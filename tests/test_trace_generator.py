"""Tests for the synthetic trace generator."""

import numpy as np
import pytest

from repro.trace.behavior import ThreadBehavior
from repro.trace.generator import (
    MAX_REGION_LINES,
    STREAM_REGION_LINES,
    WORD_BYTES,
    ThreadTraceGenerator,
)
from repro.trace.layout import STREAM_BASE_ADDRESS, AddressLayout


@pytest.fixture
def layout():
    return AddressLayout(line_bytes=64)


def gen(thread=0, seed=7, layout=None):
    return ThreadTraceGenerator(thread, layout or AddressLayout(), seed)


class TestGeneration:
    def test_deterministic_for_seed(self, layout):
        b = ThreadBehavior(ws_lines=100, share_frac=0.2, stream_frac=0.1)
        a1, g1 = gen(seed=3, layout=layout).generate(b, 5000)
        a2, g2 = gen(seed=3, layout=layout).generate(b, 5000)
        assert np.array_equal(a1, a2)
        assert np.array_equal(g1, g2)

    def test_different_seeds_differ(self, layout):
        b = ThreadBehavior(ws_lines=100)
        a1, _ = gen(seed=3, layout=layout).generate(b, 5000)
        a2, _ = gen(seed=4, layout=layout).generate(b, 5000)
        assert not np.array_equal(a1, a2)

    def test_instruction_count_approximates_target(self, layout):
        b = ThreadBehavior(ws_lines=100, mem_ratio=0.4)
        addrs, gaps = gen(layout=layout).generate(b, 20_000)
        total = int(gaps.sum()) + addrs.size
        assert 0.9 * 20_000 < total < 1.1 * 20_000

    def test_mem_ratio_respected(self, layout):
        b = ThreadBehavior(ws_lines=100, mem_ratio=0.25)
        addrs, gaps = gen(layout=layout).generate(b, 40_000)
        total = int(gaps.sum()) + addrs.size
        assert addrs.size / total == pytest.approx(0.25, rel=0.1)

    def test_private_region_bounded_by_ws(self, layout):
        b = ThreadBehavior(ws_lines=64, share_frac=0.0, stream_frac=0.0)
        addrs, _ = gen(thread=2, layout=layout).generate(b, 10_000)
        base = layout.private_base(2)
        offsets = (addrs - base) // 64
        assert offsets.min() >= 0
        assert offsets.max() < 64

    def test_regions_disjoint_between_threads(self, layout):
        b = ThreadBehavior(ws_lines=1000, share_frac=0.0, stream_frac=0.0)
        a0, _ = gen(thread=0, layout=layout).generate(b, 5000)
        a1, _ = gen(thread=1, layout=layout).generate(b, 5000)
        assert set(a0.tolist()).isdisjoint(set(a1.tolist()))

    def test_shared_region_common_across_threads(self, layout):
        b = ThreadBehavior(ws_lines=100, share_frac=0.9, stream_frac=0.0, shared_ws_lines=8)
        a0, _ = gen(thread=0, layout=layout).generate(b, 5000)
        a1, _ = gen(thread=1, layout=layout).generate(b, 5000)
        shared0 = {a for a in a0.tolist() if layout.classify(a) == "shared"}
        shared1 = {a for a in a1.tolist() if layout.classify(a) == "shared"}
        assert shared0 & shared1

    def test_skew_concentrates_accesses(self, layout):
        flat = ThreadBehavior(ws_lines=1000, skew=1.0, share_frac=0.0, stream_frac=0.0)
        hot = ThreadBehavior(ws_lines=1000, skew=3.0, share_frac=0.0, stream_frac=0.0)
        af, _ = gen(layout=layout).generate(flat, 30_000)
        ah, _ = gen(layout=layout).generate(hot, 30_000)
        base = layout.private_base(0)
        top_f = np.mean((af - base) // 64 < 100)
        top_h = np.mean((ah - base) // 64 < 100)
        assert top_h > top_f + 0.2  # hot skew concentrates on low ranks

    def test_stream_is_sequential_words(self, layout):
        b = ThreadBehavior(ws_lines=16, stream_frac=1.0, share_frac=0.0, stream_burst=0.0)
        addrs, _ = gen(layout=layout).generate(b, 2000)
        stream = addrs[addrs >= STREAM_BASE_ADDRESS]
        diffs = np.diff(stream)
        assert (diffs == WORD_BYTES).all()

    def test_stream_stride_multiplies(self, layout):
        b = ThreadBehavior(
            ws_lines=16, stream_frac=1.0, share_frac=0.0, stream_burst=0.0,
            stream_stride_words=8,
        )
        addrs, _ = gen(layout=layout).generate(b, 2000)
        stream = addrs[addrs >= STREAM_BASE_ADDRESS]
        assert (np.diff(stream) == 8 * WORD_BYTES).all()

    def test_stream_cursor_persists_across_sections(self, layout):
        b = ThreadBehavior(ws_lines=16, stream_frac=1.0, share_frac=0.0, stream_burst=0.0)
        g = gen(layout=layout)
        a1, _ = g.generate(b, 1000)
        a2, _ = g.generate(b, 1000)
        assert a2[0] == a1[-1] + WORD_BYTES

    def test_burst_is_contiguous(self, layout):
        b = ThreadBehavior(
            ws_lines=64, stream_frac=0.3, share_frac=0.0, stream_burst=1.0
        )
        addrs, _ = gen(layout=layout).generate(b, 10_000)
        is_stream = addrs >= STREAM_BASE_ADDRESS
        idx = np.flatnonzero(is_stream)
        assert idx.size > 0
        # One contiguous run.
        assert (np.diff(idx) == 1).all()

    def test_unburst_stream_is_scattered(self, layout):
        b = ThreadBehavior(
            ws_lines=64, stream_frac=0.3, share_frac=0.0, stream_burst=0.0
        )
        addrs, _ = gen(layout=layout).generate(b, 10_000)
        idx = np.flatnonzero(addrs >= STREAM_BASE_ADDRESS)
        assert idx.size > 0
        assert not (np.diff(idx) == 1).all()

    def test_ws_exceeding_region_rejected(self, layout):
        b = ThreadBehavior(ws_lines=MAX_REGION_LINES + 1)
        with pytest.raises(ValueError):
            gen(layout=layout).generate(b, 1000)

    def test_zero_instructions_rejected(self, layout):
        with pytest.raises(ValueError):
            gen(layout=layout).generate(ThreadBehavior(ws_lines=10), 0)

    def test_stream_wraps_region(self, layout):
        b = ThreadBehavior(ws_lines=16, stream_frac=1.0, share_frac=0.0, stream_burst=0.0)
        g = gen(layout=layout)
        g._stream_cursor = STREAM_REGION_LINES * 8 - 2  # near the wrap point (words)
        addrs, _ = g.generate(b, 100)
        region_bytes = STREAM_REGION_LINES * 64
        assert ((addrs - layout.stream_base(0)) < region_bytes).all()
