"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.cpu.timing import TimingModel
from repro.sim.config import SystemConfig


@pytest.fixture(autouse=True)
def _reset_observability():
    """The tracer slot and metrics registry are process-wide; pin every
    test to the disabled default and zeroed counters.

    The teardown runs in a ``finally`` so a test that raises with a
    custom tracer installed cannot leak it into later tests, and the
    entry assertion makes any leakage from *outside* this fixture (a
    module-level ``set_tracer``, an exempt session fixture) fail the
    first test it would have contaminated rather than a distant one.
    """
    from repro.obs import METRICS, NULL_TRACER, get_tracer, set_tracer

    leaked = get_tracer()
    set_tracer(None)
    METRICS.reset()
    assert leaked is NULL_TRACER, (
        f"tracer {leaked!r} leaked into this test from outside the reset fixture"
    )
    try:
        yield
    finally:
        set_tracer(None)
        METRICS.reset()
        assert get_tracer() is NULL_TRACER


@pytest.fixture(autouse=True)
def _reset_fault_plan():
    """The fault-injection plan slot is process-wide; pin every test to
    the disabled default (a leaked plan would inject faults into
    unrelated tests)."""
    from repro.exec.faults import set_fault_plan

    previous = set_fault_plan(None)
    assert previous is None, f"fault plan {previous!r} leaked into this test"
    try:
        yield
    finally:
        set_fault_plan(None)


@pytest.fixture
def small_geometry() -> CacheGeometry:
    """A tiny cache: 4 sets x 4 ways x 64 B = 1 KB."""
    return CacheGeometry(sets=4, ways=4)


@pytest.fixture
def timing() -> TimingModel:
    return TimingModel()


@pytest.fixture
def quick_config() -> SystemConfig:
    return SystemConfig.quick()


@pytest.fixture
def tiny_config() -> SystemConfig:
    """Smallest end-to-end configuration that still exercises intervals,
    sections and partitioning: used where a test needs a full run."""
    return SystemConfig(
        n_threads=4,
        l2_geometry=CacheGeometry(sets=16, ways=8),
        interval_instructions=1_500,
        n_intervals=5,
        sections_per_interval=2,
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


def line_address(geometry: CacheGeometry, set_index: int, tag: int) -> int:
    """Compose a byte address hitting ``set_index`` with ``tag``."""
    return (tag << (geometry.offset_bits + geometry.index_bits)) | (
        set_index << geometry.offset_bits
    )
