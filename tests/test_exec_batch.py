"""Batch planner and batched-engine semantics.

The planner (:mod:`repro.exec.batch`) may only ever *regroup* work:
every unit must execute to the same per-cell bytes the per-job path
produces, ineligible cells must not pay for the machinery, and a unit
that fails must decompose back into the ordinary retry path without
costing any cell its attempt budget.  The byte-identity of the batch
*kernel* itself is pinned by ``test_cache_differential.py``; this module
pins the orchestration around it.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SystemConfig
from repro.cache import CacheGeometry
from repro.exec.batch import batch_key, plan_units
from repro.exec.engine import SerialEngine, execute_job
from repro.exec.jobs import JobSpec
from repro.exec.pool import ProcessPoolEngine
from repro.obs.metrics import METRICS
from repro.partition import POLICY_REGISTRY
from repro.sim.driver import run_application, run_batch

#: Small-but-complete config: intervals, sections, partitioning all live.
BASE = SystemConfig(
    n_threads=4,
    l2_geometry=CacheGeometry(sets=16, ways=8),
    interval_instructions=1_500,
    n_intervals=5,
    sections_per_interval=2,
)
BATCHED = BASE.with_(cache_backend="batch")


def _specs(pairs, config=BATCHED):
    return [JobSpec(app, policy, config) for app, policy in pairs]


def _fast_twin(spec: JobSpec):
    """The per-job ground truth for ``spec``: same cell, fastpath kernel."""
    return run_application(spec.app, spec.policy, spec.config.with_(cache_backend="fast"))


class TestPlanUnits:
    def test_cells_sharing_a_program_form_one_unit(self):
        specs = _specs([("swim", p) for p in ("shared", "model-based", "static-equal")])
        assert plan_units(specs) == [(0, 1, 2)]
        assert METRICS.counter("batch.planned").value == 1
        assert METRICS.counter("batch.cells_batched").value == 3

    def test_lane_fields_may_vary_within_a_unit(self):
        # l2_geometry and min_ways do not shape the prepared program, so
        # they are free lane axes; everything else splits the unit.
        specs = [
            JobSpec("swim", "model-based", BATCHED),
            JobSpec("swim", "model-based", BATCHED.with_(l2_geometry=CacheGeometry(sets=32, ways=16))),
            JobSpec("swim", "model-based", BATCHED.with_(min_ways=2)),
        ]
        assert plan_units(specs) == [(0, 1, 2)]
        assert len({batch_key(s) for s in specs}) == 1

    def test_program_identity_splits_units(self):
        specs = [
            JobSpec("swim", "shared", BATCHED),
            JobSpec("art", "shared", BATCHED),  # different app
            JobSpec("swim", "shared", BATCHED.with_(seed=99)),  # different stream
        ]
        assert plan_units(specs) == [(0,), (1,), (2,)]
        assert len({batch_key(s) for s in specs}) == 3
        # 1-lane units are not "batches": no planner counters move.
        assert METRICS.counter("batch.planned").value == 0

    def test_interleaved_cells_group_in_input_order(self):
        specs = _specs(
            [("swim", "shared"), ("art", "shared"), ("swim", "model-based"), ("art", "model-based")]
        )
        assert plan_units(specs) == [(0, 2), (1, 3)]

    def test_non_batch_backends_are_untouched(self):
        specs = _specs([("swim", "shared"), ("swim", "model-based")], config=BASE)
        assert plan_units(specs) == [(0,), (1,)]
        assert METRICS.counter("batch.planned").value == 0


class TestBatchingDisabled:
    """Anything that relies on per-cell execution must see the identity
    plan, even for perfectly batchable grids."""

    BATCHABLE = (("swim", "shared"), ("swim", "model-based"))

    def test_active_fault_plan_disables_batching(self):
        from repro.exec.faults import FaultPlan, set_fault_plan

        set_fault_plan(FaultPlan(seed=7))
        assert SerialEngine()._plan_units(_specs(self.BATCHABLE)) == [(0,), (1,)]

    def test_enabled_tracer_disables_batching(self):
        from repro.obs import set_tracer
        from repro.obs.tracer import RecordingTracer

        set_tracer(RecordingTracer())
        assert SerialEngine()._plan_units(_specs(self.BATCHABLE)) == [(0,), (1,)]

    def test_custom_job_runner_disables_batching(self):
        engine = SerialEngine(job_runner=lambda spec: _fast_twin(spec))
        assert engine._plan_units(_specs(self.BATCHABLE)) == [(0,), (1,)]

    def test_default_engine_batches(self):
        assert SerialEngine()._plan_units(_specs(self.BATCHABLE)) == [(0, 1)]


class TestSingleLaneFallback:
    def test_one_lane_unit_never_enters_batch_machinery(self, monkeypatch):
        """Regression: a cell whose prep key is unique must run through
        the ordinary per-job path on the non-batched kernel — the batch
        entry point must not even be called."""

        def _forbidden(specs):
            raise AssertionError("execute_batch called for a 1-lane unit")

        monkeypatch.setattr("repro.exec.batch.execute_batch", _forbidden)
        spec = JobSpec("swim", "model-based", BATCHED)
        (outcome,) = SerialEngine().run([spec])
        assert outcome.ok and outcome.attempts == 1
        # The "batch" backend fell through to the fastpath kernel ...
        assert METRICS.counter("batch.fallback").value == 1
        assert METRICS.counter("batch.batches").value == 0
        # ... and produced the per-job bytes exactly.
        assert outcome.result == _fast_twin(spec)

    def test_fallthrough_simulation_is_byte_identical(self):
        # Direct run_application with the batch backend (no planner at
        # all) is the same zero-overhead fallthrough.
        result = run_application("art", "shared", BATCHED)
        assert METRICS.counter("batch.fallback").value == 1
        assert result == run_application("art", "shared", BASE.with_(cache_backend="fast"))


class TestBatchedEngines:
    def test_serial_engine_fans_batches_back_out(self):
        specs = _specs([("swim", p) for p in ("shared", "model-based", "static-equal")])
        seen = []
        outcomes = SerialEngine().run(specs, on_outcome=seen.append)
        assert [o.spec is s for o, s in zip(outcomes, specs)] == [True] * 3
        assert seen == outcomes
        assert all(o.ok and o.attempts == 1 and o.engine == "serial" for o in outcomes)
        assert METRICS.counter("batch.batches").value == 1
        assert METRICS.counter("batch.lanes").value == 3
        assert METRICS.counter("exec.jobs_ok").value == 3
        for outcome in outcomes:
            assert outcome.result == _fast_twin(outcome.spec)

    def test_pool_engine_matches_serial(self):
        specs = _specs(
            [("swim", "shared"), ("swim", "model-based"), ("art", "shared"), ("art", "model-based")]
        )
        serial = SerialEngine().run(specs)
        pooled = ProcessPoolEngine(2).run(specs)
        assert all(o.ok for o in pooled), [o.error for o in pooled]
        for s, p in zip(serial, pooled, strict=True):
            assert s.result == p.result, f"{s.spec.label}: pool and serial batches differ"

    def test_failed_batch_decomposes_to_per_job_retries(self, monkeypatch):
        monkeypatch.setattr(
            "repro.exec.batch.execute_batch",
            lambda specs: (_ for _ in ()).throw(RuntimeError("kernel exploded")),
        )
        specs = _specs([("swim", "shared"), ("swim", "model-based")])
        outcomes = SerialEngine(backoff_s=0.0).run(specs)
        # Every cell still succeeds — with its full attempt budget.
        assert all(o.ok and o.attempts == 1 for o in outcomes)
        assert METRICS.counter("batch.failed").value == 1
        # The decomposed cells ran per-job, i.e. through the fallthrough.
        assert METRICS.counter("batch.fallback").value == 2
        for outcome in outcomes:
            assert outcome.result == _fast_twin(outcome.spec)


class TestRemoteBatch:
    def _fleet_specs(self):
        return _specs([("swim", p) for p in ("shared", "model-based", "static-equal")])

    def test_capable_worker_runs_whole_units(self):
        from repro.dist.engine import RemoteEngine
        from repro.dist.worker import WorkerServer

        specs = self._fleet_specs()
        expected = SerialEngine().run(specs)
        with WorkerServer() as worker:
            worker.start()
            outcomes = RemoteEngine([worker.address]).run(specs)
        assert all(o.ok for o in outcomes), [o.error for o in outcomes]
        assert METRICS.counter("dist.batches_shipped").value == 1
        assert worker.jobs_run == 3
        for e, o in zip(expected, outcomes, strict=True):
            assert e.result == o.result

    def test_incapable_worker_decomposes_units(self):
        from repro.dist.engine import RemoteEngine
        from repro.dist.worker import WorkerServer

        def _per_job_only(spec):  # not `execute_job` itself → no batch cap
            return execute_job(spec)

        specs = self._fleet_specs()
        expected = SerialEngine().run(specs)
        with WorkerServer(job_runner=_per_job_only) as worker:
            worker.start()
            outcomes = RemoteEngine([worker.address]).run(specs)
        assert all(o.ok for o in outcomes), [o.error for o in outcomes]
        assert METRICS.counter("dist.batch_unsupported").value == 1
        assert METRICS.counter("dist.batches_shipped").value == 0
        assert worker.jobs_run == 3  # shipped one job frame per cell instead
        for e, o in zip(expected, outcomes, strict=True):
            assert e.result == o.result


# -- lane-equivalence property -----------------------------------------

_GEOMETRIES = (CacheGeometry(sets=16, ways=8), CacheGeometry(sets=32, ways=16))
_LANE_OPTIONS = tuple(
    (policy, g) for policy in sorted(POLICY_REGISTRY) for g in range(len(_GEOMETRIES))
)
_SOLO_CACHE: dict[tuple[str, int], dict] = {}


def _solo(policy: str, g: int) -> dict:
    """Cached per-cell ground truth (fastpath replay) for one lane."""
    key = (policy, g)
    if key not in _SOLO_CACHE:
        config = BASE.with_(l2_geometry=_GEOMETRIES[g], cache_backend="fast")
        _SOLO_CACHE[key] = run_application("swim", policy, config).to_dict()
    return _SOLO_CACHE[key]


@settings(max_examples=15, deadline=None)
@given(
    lanes=st.lists(st.sampled_from(_LANE_OPTIONS), min_size=1, max_size=4, unique=True)
)
def test_random_lane_subsets_match_solo_replay(lanes):
    """Property: any subset of lanes, in any order, batched over one
    shared program produces each lane's solo bytes exactly — lane results
    cannot depend on which neighbours share the batch."""
    cells = [
        (policy, BATCHED.with_(l2_geometry=_GEOMETRIES[g])) for policy, g in lanes
    ]
    results = run_batch("swim", cells)
    for (policy, g), result in zip(lanes, results):
        assert result.to_dict() == _solo(policy, g), (
            f"lane swim/{policy}/geometry-{g} diverged inside batch {lanes}"
        )
