"""Tests for the partitioned shared cache (paper Section V mechanism)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.cache.shared import PartitionedSharedCache

from .conftest import line_address


def addr(geo, set_index, tag):
    return line_address(geo, set_index, tag)


@pytest.fixture
def geo():
    return CacheGeometry(sets=4, ways=4, line_bytes=64)


class TestBasicCaching:
    def test_first_access_misses_second_hits(self, geo):
        c = PartitionedSharedCache(geo, 2)
        a = addr(geo, 0, 1)
        assert c.access(0, a) is False
        assert c.access(0, a) is True

    def test_different_sets_do_not_conflict(self, geo):
        c = PartitionedSharedCache(geo, 2)
        for s in range(geo.sets):
            assert c.access(0, addr(geo, s, 7)) is False
        for s in range(geo.sets):
            assert c.access(0, addr(geo, s, 7)) is True

    def test_lru_eviction_order_unpartitioned(self, geo):
        c = PartitionedSharedCache(geo, 1, enforce_partition=False)
        # Fill set 0 with tags 0..3, then access tag 0 to refresh it.
        for t in range(4):
            c.access(0, addr(geo, 0, t))
        c.access(0, addr(geo, 0, 0))
        # Insert a new tag: LRU victim must be tag 1 (oldest untouched).
        c.access(0, addr(geo, 0, 9))
        assert c.contains(addr(geo, 0, 0))
        assert not c.contains(addr(geo, 0, 1))
        assert c.contains(addr(geo, 0, 2))

    def test_capacity_not_exceeded(self, geo):
        c = PartitionedSharedCache(geo, 2)
        for t in range(100):
            c.access(t % 2, addr(geo, 0, t))
        assert sum(c.set_occupancy(0)) == geo.ways

    def test_cold_fills_do_not_evict(self, geo):
        c = PartitionedSharedCache(geo, 2)
        for t in range(geo.ways):
            c.access(0, addr(geo, 0, t))
        assert sum(c.stats.evictions) == 0

    def test_flush_empties_cache(self, geo):
        c = PartitionedSharedCache(geo, 2)
        a = addr(geo, 1, 5)
        c.access(0, a)
        c.flush()
        assert not c.contains(a)
        assert c.access(0, a) is False

    def test_owner_of(self, geo):
        c = PartitionedSharedCache(geo, 2)
        a = addr(geo, 2, 3)
        assert c.owner_of(a) is None
        c.access(1, a)
        assert c.owner_of(a) == 1


class TestPartitionEnforcement:
    def test_targets_validation(self, geo):
        c = PartitionedSharedCache(geo, 2)
        with pytest.raises(ValueError):
            c.set_targets([1, 1])  # doesn't sum to 4
        with pytest.raises(ValueError):
            c.set_targets([5, -1])
        with pytest.raises(ValueError):
            c.set_targets([4])

    def test_equal_default_targets(self, geo):
        c = PartitionedSharedCache(geo, 2)
        assert c.targets == [2, 2]

    def test_occupancy_converges_to_targets(self, geo):
        c = PartitionedSharedCache(geo, 2, targets=[3, 1])
        # Both threads hammer the same set with disjoint, oversized tag
        # streams; occupancy must converge to the 3/1 split.
        for i in range(200):
            c.access(0, addr(geo, 0, i % 8))
            c.access(1, addr(geo, 0, 100 + i % 8))
        assert c.set_occupancy(0) == [3, 1]

    def test_retargeting_shifts_occupancy_gradually(self, geo):
        c = PartitionedSharedCache(geo, 2, targets=[2, 2])
        for i in range(100):
            c.access(0, addr(geo, 0, i % 8))
            c.access(1, addr(geo, 0, 100 + i % 8))
        assert c.set_occupancy(0) == [2, 2]
        c.set_targets([1, 3])
        for i in range(100):
            c.access(0, addr(geo, 0, i % 8))
            c.access(1, addr(geo, 0, 100 + i % 8))
        assert c.set_occupancy(0) == [1, 3]

    def test_under_target_thread_evicts_over_target_lines(self, geo):
        c = PartitionedSharedCache(geo, 2, targets=[2, 2])
        # Thread 0 fills the whole set (over target).
        for t in range(4):
            c.access(0, addr(geo, 0, t))
        # Thread 1 (under target) misses: must evict a thread-0 line.
        c.access(1, addr(geo, 0, 50))
        assert c.set_occupancy(0) == [3, 1]

    def test_at_target_thread_evicts_own_lru_line(self, geo):
        c = PartitionedSharedCache(geo, 2, targets=[2, 2])
        for t in range(2):
            c.access(0, addr(geo, 0, t))
        for t in range(2):
            c.access(1, addr(geo, 0, 10 + t))
        # Thread 0 at target: inserting a new line evicts its own LRU (tag 0).
        c.access(0, addr(geo, 0, 5))
        assert not c.contains(addr(geo, 0, 0))
        assert c.contains(addr(geo, 0, 10))
        assert c.contains(addr(geo, 0, 11))
        assert c.set_occupancy(0) == [2, 2]

    def test_cross_partition_hits_allowed(self, geo):
        """The key intra-application property: a thread can HIT on a line
        in another thread's partition (constructive sharing preserved)."""
        c = PartitionedSharedCache(geo, 2, targets=[2, 2])
        a = addr(geo, 3, 42)
        c.access(0, a)
        assert c.access(1, a) is True
        # Ownership (quota accounting) stays with the inserter.
        assert c.owner_of(a) == 0

    def test_protected_thread_keeps_lines_under_attack(self, geo):
        """A thread at its target cannot destroy another's partition."""
        c = PartitionedSharedCache(geo, 2, targets=[2, 2])
        a0, a1 = addr(geo, 0, 1), addr(geo, 0, 2)
        c.access(0, a0)
        c.access(0, a1)
        # Thread 1 streams 100 distinct lines through the same set.
        for i in range(100):
            c.access(1, addr(geo, 0, 1000 + i))
        assert c.contains(a0)
        assert c.contains(a1)

    def test_unenforced_mode_is_vulnerable_to_streaming(self, geo):
        """Contrast with the shared baseline: global LRU lets the stream
        flush the other thread's lines."""
        c = PartitionedSharedCache(geo, 2, enforce_partition=False)
        a0 = addr(geo, 0, 1)
        c.access(0, a0)
        for i in range(100):
            c.access(1, addr(geo, 0, 1000 + i))
        assert not c.contains(a0)

    def test_zero_target_thread_falls_back_to_global_lru(self, geo):
        c = PartitionedSharedCache(geo, 2, targets=[4, 0])
        for t in range(4):
            c.access(0, addr(geo, 0, t))
        # Thread 1 (target 0, owns nothing) misses; must still make progress.
        assert c.access(1, addr(geo, 0, 99)) is False
        assert c.contains(addr(geo, 0, 99))

    def test_too_few_ways_for_threads_rejected(self):
        with pytest.raises(ValueError):
            PartitionedSharedCache(CacheGeometry(sets=2, ways=2), 4)


class TestStatistics:
    def test_hits_misses_counted_per_thread(self, geo):
        c = PartitionedSharedCache(geo, 2)
        a = addr(geo, 0, 1)
        c.access(0, a)
        c.access(0, a)
        c.access(1, a)
        assert c.stats.accesses == [2, 1]
        assert c.stats.misses == [1, 0]
        assert c.stats.hits == [1, 1]

    def test_inter_thread_hit_classification(self, geo):
        c = PartitionedSharedCache(geo, 2)
        a = addr(geo, 0, 1)
        c.access(0, a)
        c.access(1, a)  # inter-thread (previous accessor was 0)
        c.access(1, a)  # intra-thread now
        assert c.stats.inter_thread_hits == [0, 1]
        assert c.stats.intra_thread_hits == [0, 1]

    def test_inter_thread_eviction_classification(self, geo):
        c = PartitionedSharedCache(geo, 2, enforce_partition=False)
        # Thread 0 fills the set, thread 1 evicts one of its lines.
        for t in range(4):
            c.access(0, addr(geo, 0, t))
        c.access(1, addr(geo, 0, 50))
        assert c.stats.inter_thread_evictions == [0, 1]
        assert c.stats.evictions == [0, 1]

    def test_own_eviction_not_inter_thread(self, geo):
        c = PartitionedSharedCache(geo, 1, enforce_partition=False)
        for t in range(5):
            c.access(0, addr(geo, 0, t))
        assert c.stats.evictions == [1]
        assert c.stats.inter_thread_evictions == [0]

    def test_snapshot_delta(self, geo):
        c = PartitionedSharedCache(geo, 2)
        c.access(0, addr(geo, 0, 1))
        snap1 = c.stats.snapshot()
        c.access(0, addr(geo, 0, 1))
        c.access(1, addr(geo, 0, 2))
        delta = c.stats.snapshot().minus(snap1)
        assert delta.accesses == (1, 1)
        assert delta.hits == (1, 0)
        assert delta.misses == (0, 1)

    def test_occupancy_totals(self, geo):
        c = PartitionedSharedCache(geo, 2)
        c.access(0, addr(geo, 0, 1))
        c.access(1, addr(geo, 2, 1))
        assert c.occupancy() == [1, 1]


class TestInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=15),
            ),
            min_size=1,
            max_size=300,
        ),
        st.booleans(),
    )
    def test_property_internal_consistency(self, accesses, enforce):
        geo = CacheGeometry(sets=4, ways=4, line_bytes=64)
        c = PartitionedSharedCache(geo, 3, enforce_partition=enforce, targets=[2, 1, 1])
        for thread, s, tag in accesses:
            c.access(thread, addr(geo, s, tag))
        c.check_invariants()
        stats = c.stats
        for t in range(3):
            assert stats.hits[t] + stats.misses[t] == stats.accesses[t]

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1),
                st.integers(min_value=0, max_value=63),
            ),
            min_size=50,
            max_size=400,
        )
    )
    def test_property_partition_bounds_after_convergence(self, accesses):
        """Whatever state random traffic leaves the set in, a deterministic
        phase of guaranteed misses from both threads converges occupancy to
        the targets exactly."""
        geo = CacheGeometry(sets=4, ways=4, line_bytes=64)
        c = PartitionedSharedCache(geo, 2, targets=[3, 1])
        for thread, tag in accesses:
            # Thread-disjoint tag spaces force misses from both threads.
            c.access(thread, addr(geo, 0, tag + thread * 1000))
        for i in range(16):
            c.access(0, addr(geo, 0, 5000 + i))
            c.access(1, addr(geo, 0, 9000 + i))
        assert c.set_occupancy(0) == [3, 1]
        c.check_invariants()
