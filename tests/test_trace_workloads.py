"""Tests for the named workload profiles and program builder."""

import numpy as np
import pytest

from repro.sync.program import SyntheticProgram
from repro.trace.builder import build_program
from repro.trace.workloads import WORKLOADS, WorkloadProfile, get_workload, list_workloads


class TestRegistry:
    def test_nine_workloads_registered(self):
        assert len(WORKLOADS) == 9

    def test_names_match_paper_suites(self):
        names = set(list_workloads())
        assert {"swim", "mgrid", "applu", "art", "equake", "wupwise"} <= names  # SPEC OMP
        assert {"cg", "mg", "ft"} <= names  # NAS

    def test_get_workload(self):
        assert get_workload("swim").name == "swim"

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get_workload("nonexistent")

    def test_every_profile_has_four_base_threads(self):
        for p in WORKLOADS.values():
            assert len(p.base_behaviors) == 4

    def test_every_profile_describes_itself(self):
        for p in WORKLOADS.values():
            assert p.description
            assert p.suite in ("SPEC OMP", "NAS")


class TestBehaviorsFor:
    def test_four_threads_identity(self):
        p = get_workload("cg")
        assert p.behaviors_for(4) == list(p.base_behaviors)

    def test_eight_threads_tiles_with_perturbation(self):
        p = get_workload("cg")
        b8 = p.behaviors_for(8)
        assert len(b8) == 8
        # First four are the base; the tiled half is perturbed but close.
        for t in range(4, 8):
            base = p.base_behaviors[t % 4]
            assert abs(b8[t].ws_lines - base.ws_lines) <= 0.15 * base.ws_lines

    def test_deterministic(self):
        p = get_workload("swim")
        assert p.behaviors_for(8) == p.behaviors_for(8)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            get_workload("swim").behaviors_for(0)

    def test_heterogeneity_present(self):
        """Every strong profile must have meaningfully different working
        sets across threads — the paper's core observation (Fig. 3)."""
        for name in ("swim", "mgrid", "applu", "art", "cg", "mg"):
            ws = [b.ws_lines for b in get_workload(name).base_behaviors]
            assert max(ws) >= 2 * min(ws), name


class TestBuildProgram:
    def test_shape(self):
        prog = build_program(
            get_workload("cg"), n_threads=4, n_intervals=3,
            interval_instructions=2000, sections_per_interval=2, seed=5,
        )
        assert isinstance(prog, SyntheticProgram)
        assert len(prog.sections) == 6
        assert prog.n_threads == 4

    def test_deterministic(self):
        kw = dict(n_threads=2, n_intervals=2, interval_instructions=1500,
                  sections_per_interval=2, seed=11)
        p1 = build_program(get_workload("swim"), **kw)
        p2 = build_program(get_workload("swim"), **kw)
        for s1, s2 in zip(p1.sections, p2.sections, strict=True):
            for w1, w2 in zip(s1.works, s2.works, strict=True):
                assert np.array_equal(w1.addrs, w2.addrs)
                assert np.array_equal(w1.gaps, w2.gaps)

    def test_seed_changes_trace(self):
        kw = dict(n_threads=2, n_intervals=1, interval_instructions=1500,
                  sections_per_interval=1)
        p1 = build_program(get_workload("swim"), seed=1, **kw)
        p2 = build_program(get_workload("swim"), seed=2, **kw)
        assert not np.array_equal(p1.sections[0].works[0].addrs, p2.sections[0].works[0].addrs)

    def test_interval_instruction_budget(self):
        prog = build_program(
            get_workload("ft"), n_threads=4, n_intervals=4,
            interval_instructions=4000, sections_per_interval=2, seed=5,
        )
        per_thread = prog.thread_instructions(0)
        assert 0.8 * 16_000 < per_thread < 1.2 * 16_000

    def test_meta_recorded(self):
        prog = build_program(
            get_workload("mg"), n_threads=4, n_intervals=2,
            interval_instructions=1000, sections_per_interval=1, seed=9,
        )
        assert prog.meta["seed"] == 9
        assert prog.meta["suite"] == "NAS"

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            build_program(get_workload("mg"), n_intervals=0)
        with pytest.raises(ValueError):
            build_program(get_workload("mg"), work_jitter=1.5)

    def test_custom_profile(self):
        from repro.trace.behavior import ThreadBehavior

        profile = WorkloadProfile(
            name="custom",
            suite="NAS",
            description="test",
            base_behaviors=(ThreadBehavior(ws_lines=50), ThreadBehavior(ws_lines=500)),
        )
        prog = build_program(profile, n_threads=2, n_intervals=1,
                             interval_instructions=1000, sections_per_interval=1)
        assert prog.name == "custom"
