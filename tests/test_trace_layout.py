"""Tests for the address-space layout."""

import pytest

from repro.trace.layout import STREAM_BASE_ADDRESS, AddressLayout


class TestLayout:
    def test_regions_disjoint(self):
        lay = AddressLayout()
        assert lay.shared_base() < lay.private_base(0) < lay.stream_base(0)

    def test_thread_strides(self):
        lay = AddressLayout()
        assert lay.private_base(1) - lay.private_base(0) == 1 << 32
        assert lay.stream_base(3) > lay.stream_base(0)

    def test_negative_thread_rejected(self):
        lay = AddressLayout()
        with pytest.raises(ValueError):
            lay.private_base(-1)
        with pytest.raises(ValueError):
            lay.stream_base(-1)

    def test_classify(self):
        lay = AddressLayout()
        assert lay.classify(lay.shared_base() + 100) == "shared"
        assert lay.classify(lay.private_base(2) + 64) == "private"
        assert lay.classify(lay.stream_base(0) + 8) == "stream"
        assert lay.classify(42) == "unknown"

    def test_stream_base_constant_matches_layout(self):
        lay = AddressLayout()
        assert lay.stream_base(0) == STREAM_BASE_ADDRESS

    def test_lines_to_bytes(self):
        assert AddressLayout(line_bytes=64).lines_to_bytes(10) == 640
