"""Tests for the store backend seam: key safety, the backend contract,
and ResultStore running on a non-filesystem medium."""

from __future__ import annotations

import pytest

from repro.exec.backend import LocalDirBackend, MemoryBackend, _check_key
from repro.exec.jobs import JobSpec
from repro.exec.store import ResultStore
from repro.sim.config import SystemConfig


def _spec(app: str = "swim") -> JobSpec:
    return JobSpec(app=app, policy="shared", config=SystemConfig.default())


class TestKeyChecking:
    @pytest.mark.parametrize(
        "bad",
        ["", "/abs/path", "../escape", "a/../b", "v1/../../etc/passwd"],
    )
    def test_rejects_unsafe_keys(self, bad):
        with pytest.raises(ValueError, match="invalid store key"):
            _check_key(bad)

    def test_accepts_normal_keys(self):
        assert _check_key("v1.7.0/ab/abcd.json") == "v1.7.0/ab/abcd.json"


class TestBackendContract:
    """One parametrized contract suite both shipped backends must pass."""

    @pytest.fixture(params=["local", "memory"])
    def backend(self, request, tmp_path):
        if request.param == "local":
            return LocalDirBackend(tmp_path / "blobs")
        return MemoryBackend()

    def test_read_missing_is_none(self, backend):
        assert backend.read("v1/ab/missing.json") is None
        assert not backend.exists("v1/ab/missing.json")

    def test_write_read_roundtrip(self, backend):
        backend.write("v1/ab/one.json", b'{"x": 1}')
        assert backend.read("v1/ab/one.json") == b'{"x": 1}'
        assert backend.exists("v1/ab/one.json")

    def test_overwrite_wins(self, backend):
        backend.write("v1/ab/one.json", b"old")
        backend.write("v1/ab/one.json", b"new")
        assert backend.read("v1/ab/one.json") == b"new"

    def test_delete(self, backend):
        backend.write("v1/ab/one.json", b"x")
        assert backend.delete("v1/ab/one.json")
        assert backend.read("v1/ab/one.json") is None
        assert not backend.delete("v1/ab/one.json")

    def test_list_is_sorted_and_prefixed(self, backend):
        backend.write("v1/ab/b.json", b"1")
        backend.write("v1/ab/a.json", b"2")
        backend.write("v2/cd/c.json", b"3")
        assert backend.list("v1") == ["v1/ab/a.json", "v1/ab/b.json"]
        assert backend.list() == ["v1/ab/a.json", "v1/ab/b.json", "v2/cd/c.json"]

    def test_traversal_keys_die_at_the_boundary(self, backend):
        with pytest.raises(ValueError):
            backend.write("../outside", b"x")
        with pytest.raises(ValueError):
            backend.read("../outside")


class TestLocalDirBackend:
    def test_write_leaves_no_staging_residue(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        backend.write("v1/ab/one.json", b"payload")
        residue = list(tmp_path.rglob(".put-*.tmp"))
        assert residue == []

    def test_sweep_stale_reclaims_old_staging_files(self, tmp_path):
        backend = LocalDirBackend(tmp_path / "v1")
        backend.write("ab/one.json", b"x")
        orphan = tmp_path / "v1" / "ab" / ".put-orphan.tmp"
        orphan.write_bytes(b"half")
        assert backend.sweep_stale("", ttl_s=0.0) == 1
        assert not orphan.exists()
        # Fresh staging files survive a TTL'd sweep.
        orphan.write_bytes(b"half")
        assert backend.sweep_stale("", ttl_s=3600.0) == 0
        assert orphan.exists()


class TestResultStoreOnMemoryBackend:
    """The store logic (keying, validation, eviction) must be identical
    whatever medium holds the bytes."""

    def test_roundtrip_and_stats(self, tmp_path):
        from repro.sim.driver import run_application

        store = ResultStore(tmp_path, backend=MemoryBackend())
        config = SystemConfig.default().with_(n_intervals=2)
        spec = JobSpec(app="swim", policy="shared", config=config)
        assert store.get(spec) is None  # miss
        result = run_application(spec.app, spec.policy, config)
        store.put(spec, result)
        cached = store.get(spec)
        assert cached is not None
        assert cached.total_cycles == result.total_cycles
        assert spec in store
        assert len(store) == 1
        stats = store.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["writes"] == 1

    def test_corrupt_blob_is_evicted_as_miss(self, tmp_path):
        backend = MemoryBackend()
        store = ResultStore(tmp_path, backend=backend)
        spec = _spec()
        backend.write(store.key_for(spec), b'{"truncat')
        assert store.get(spec) is None
        assert store.stats()["corrupt"] == 1
        assert backend.read(store.key_for(spec)) is None  # evicted

    def test_clear_removes_only_store_keys(self, tmp_path):
        backend = MemoryBackend()
        store = ResultStore(tmp_path, backend=backend)
        backend.write(store.key_for(_spec()), b"{}")
        store.clear()
        assert len(store) == 0
