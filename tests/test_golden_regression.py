"""Golden regression fixtures: frozen end-to-end simulation results.

Three app x policy pairs run at the quick scale and their full
``RunResult.to_dict()`` is compared against JSON checked into
``tests/golden/``.  The differential suite proves the two backends agree
with *each other*; this suite pins them both to a known-good history, so
an optimisation that changes simulation semantics (even consistently
across both backends) still fails loudly.

When a change is *intended* to alter results, regenerate with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_regression.py

and review the fixture diff like any other code change.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro import SystemConfig
from repro.sim.driver import run_application

GOLDEN_DIR = Path(__file__).parent / "golden"
REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"

#: Covers both kernel families (model-based/static-equal enforce the
#: partition, shared is plain LRU) and three distinct workloads.
CASES = (
    ("swim", "model-based"),
    ("art", "shared"),
    ("equake", "static-equal"),
)


def _flatten(value, path="", out=None) -> dict:
    """``{'a.b[2]': leaf}`` view of a nested dict — makes diffs readable."""
    if out is None:
        out = {}
    if isinstance(value, dict):
        for key in value:
            _flatten(value[key], f"{path}.{key}" if path else str(key), out)
    elif isinstance(value, list):
        for i, item in enumerate(value):
            _flatten(item, f"{path}[{i}]", out)
    else:
        out[path] = value
    return out


@pytest.mark.parametrize(("app", "policy"), CASES, ids=[f"{a}-{p}" for a, p in CASES])
def test_golden_result(app, policy):
    result = run_application(app, policy, SystemConfig.quick()).to_dict()
    fixture = GOLDEN_DIR / f"{app}__{policy}.json"
    if REGEN:
        fixture.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {fixture.name}")
    assert fixture.exists(), (
        f"missing fixture {fixture}; run with REPRO_REGEN_GOLDEN=1 to create it"
    )
    golden = json.loads(fixture.read_text())
    if golden == result:
        return
    flat_golden, flat_now = _flatten(golden), _flatten(result)
    lines = []
    for key in sorted(set(flat_golden) | set(flat_now)):
        old, new = flat_golden.get(key, "<absent>"), flat_now.get(key, "<absent>")
        if old != new:
            lines.append(f"  {key}: golden={old!r} now={new!r}")
    preview = "\n".join(lines[:40])
    more = f"\n  ... and {len(lines) - 40} more" if len(lines) > 40 else ""
    pytest.fail(
        f"{app}/{policy} drifted from golden fixture ({len(lines)} fields):\n"
        f"{preview}{more}\n"
        "If intended, regenerate with REPRO_REGEN_GOLDEN=1 and review the diff."
    )


def test_golden_results_batched():
    """The batch backend pins to the same frozen history: one multi-app
    replay per golden case, each lane byte-identical to its fixture.

    The fixtures are shared with :func:`test_golden_result` on purpose —
    regenerating them (``REPRO_REGEN_GOLDEN=1``) re-pins every backend at
    once, so the batch kernel can never drift behind a regeneration.
    """
    missing = [
        f"{app}__{policy}.json"
        for app, policy in CASES
        if not (GOLDEN_DIR / f"{app}__{policy}.json").exists()
    ]
    if REGEN or missing:
        pytest.skip(f"fixtures pending regeneration: {missing or 'regen run'}")
    from repro.sim.driver import run_batch

    config = SystemConfig.quick().with_(cache_backend="batch")
    for app, policy in CASES:
        # One-lane batches per case: the golden CASES span apps, so they
        # can never share a prepared program; what is pinned here is the
        # batch *entry point* against the same frozen bytes.
        (result,) = run_batch(app, [(policy, config)])
        golden = json.loads((GOLDEN_DIR / f"{app}__{policy}.json").read_text())
        assert result.to_dict() == golden, (
            f"batched {app}/{policy} drifted from its golden fixture"
        )


def test_golden_results_batched_multi_lane():
    """Multi-lane batches pin to the same fixtures where policies share
    an app: swim under model-based next to a second lane must reproduce
    the frozen swim/model-based bytes exactly."""
    if REGEN or not (GOLDEN_DIR / "swim__model-based.json").exists():
        pytest.skip("fixtures pending regeneration")
    from repro.sim.driver import run_batch

    config = SystemConfig.quick().with_(cache_backend="batch")
    results = run_batch("swim", [("model-based", config), ("shared", config)])
    golden = json.loads((GOLDEN_DIR / "swim__model-based.json").read_text())
    assert results[0].to_dict() == golden
