"""Tests for repro.exec.faults: deterministic fault injection.

The injected job runners must be module-level functions so the pool
engine can pickle them into worker processes.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.cache.stats import StatsSnapshot
from repro.core.records import RunResult
from repro.exec.engine import SerialEngine
from repro.exec.faults import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    fire_job_faults,
    get_fault_plan,
    set_fault_plan,
)
from repro.exec.jobs import JobSpec
from repro.exec.pool import ProcessPoolEngine
from repro.exec.store import ResultStore
from repro.obs import METRICS, RecordingTracer, set_tracer


def _dummy_result(spec: JobSpec) -> RunResult:
    zeros = (0,)
    snap = StatsSnapshot(zeros, zeros, zeros, zeros, zeros, zeros, zeros)
    return RunResult(
        app=spec.app,
        policy=spec.policy,
        n_threads=1,
        total_cycles=1.0,
        thread_instructions=(1,),
        thread_busy_cycles=(1.0,),
        thread_stall_cycles=(0.0,),
        l2_totals=snap,
    )


def _echo_runner(spec: JobSpec) -> RunResult:
    return _dummy_result(spec)


def specs_for(config, pairs):
    return [JobSpec(app, policy, config) for app, policy in pairs]


def _counters() -> dict:
    return METRICS.snapshot()["counters"]


class TestFaultRule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(kind="coffee-spill")

    def test_rate_and_delay_validated(self):
        with pytest.raises(ValueError, match="rate"):
            FaultRule(kind="delay", rate=1.5)
        with pytest.raises(ValueError, match="delay_s"):
            FaultRule(kind="delay", delay_s=-0.1)


class TestFaultPlan:
    def test_roundtrip_through_dict(self):
        plan = FaultPlan(
            seed=42,
            rules=(
                FaultRule(kind="job-exception", match="swim/*", attempts=(1, 2)),
                FaultRule(kind="delay", rate=0.5, delay_s=0.01),
            ),
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_select_is_deterministic(self):
        plan = FaultPlan(seed=7, rules=(FaultRule(kind="job-exception", rate=0.5),))
        decisions = [plan.select("job-exception", f"app{i}/pol", 1) for i in range(64)]
        again = [plan.select("job-exception", f"app{i}/pol", 1) for i in range(64)]
        assert decisions == again
        fired = sum(1 for d in decisions if d is not None)
        # rate=0.5 over 64 keys: not all, not none (deterministic, so this
        # never flakes — it pins the seeded distribution).
        assert 10 < fired < 54

    def test_different_seed_different_selection(self):
        r = (FaultRule(kind="job-exception", rate=0.5),)
        keys = [f"app{i}/pol" for i in range(64)]
        a = {k for k in keys if FaultPlan(seed=1, rules=r).select("job-exception", k, 1)}
        b = {k for k in keys if FaultPlan(seed=2, rules=r).select("job-exception", k, 1)}
        assert a != b

    def test_match_and_attempts_filter(self):
        plan = FaultPlan(
            rules=(FaultRule(kind="job-exception", match="swim/*", attempts=(1,)),)
        )
        assert plan.select("job-exception", "swim/shared", 1) is not None
        assert plan.select("job-exception", "swim/shared", 2) is None
        assert plan.select("job-exception", "cg/shared", 1) is None

    def test_planned_job_faults_excludes_artifact_kind(self):
        plan = FaultPlan(
            rules=(
                FaultRule(kind="artifact-corruption"),
                FaultRule(kind="delay", delay_s=0.0),
            )
        )
        kinds = [r.kind for r in plan.planned_job_faults("any", 1)]
        assert kinds == ["delay"]


class TestProcessSlot:
    def test_default_is_disabled(self):
        assert get_fault_plan() is None

    def test_disabled_hook_is_inert(self):
        fire_job_faults("swim/shared", 1)  # no plan: must not raise
        assert _counters().get("faults.injected.job-exception", 0) == 0

    def test_set_returns_previous(self):
        plan = FaultPlan()
        assert set_fault_plan(plan) is None
        assert set_fault_plan(None) is plan


class TestSerialInjection:
    def test_job_exception_consumes_attempt_then_retry_succeeds(self, tiny_config):
        set_fault_plan(
            FaultPlan(rules=(FaultRule(kind="job-exception", attempts=(1,)),))
        )
        tracer = RecordingTracer()
        set_tracer(tracer)
        engine = SerialEngine(max_retries=1, backoff_s=0.0, job_runner=_echo_runner)
        outcome = engine.run_one(JobSpec("ft", "shared", tiny_config))
        assert outcome.ok
        assert outcome.attempts == 2
        assert _counters()["faults.injected.job-exception"] == 1
        injected = [e for e in tracer.events if e.kind == "fault_injected"]
        assert [(e.fault, e.attempt) for e in injected] == [("job-exception", 1)]

    def test_worker_death_degrades_to_exception_in_process(self, tiny_config):
        set_fault_plan(FaultPlan(rules=(FaultRule(kind="worker-death"),)))
        engine = SerialEngine(max_retries=0, backoff_s=0.0, job_runner=_echo_runner)
        outcome = engine.run_one(JobSpec("ft", "shared", tiny_config))
        assert not outcome.ok
        assert "injected worker-death" in outcome.error

    def test_delay_sleeps_before_attempt(self, tiny_config):
        set_fault_plan(
            FaultPlan(rules=(FaultRule(kind="delay", delay_s=0.05, attempts=(1,)),))
        )
        engine = SerialEngine(max_retries=0, job_runner=_echo_runner)
        start = time.perf_counter()
        outcome = engine.run_one(JobSpec("ft", "shared", tiny_config))
        assert outcome.ok
        assert time.perf_counter() - start >= 0.05
        assert _counters()["faults.injected.delay"] == 1

    def test_backoff_budget_bounds_perpetual_failure(self, tiny_config):
        """Satellite: one perpetually-failing job exhausts the retry/backoff
        budget and is reported failed while the rest of the batch completes
        — and the budget caps how long the failure can stall the batch."""
        set_fault_plan(
            FaultPlan(rules=(FaultRule(kind="job-exception", match="art/*"),))
        )
        engine = SerialEngine(
            max_retries=4,
            backoff_s=0.2,
            backoff_cap_s=0.2,
            backoff_budget_s=0.25,
            job_runner=_echo_runner,
        )
        jobs = specs_for(tiny_config, [("ft", "shared"), ("art", "shared"), ("cg", "shared")])
        start = time.perf_counter()
        outcomes = engine.run(jobs)
        wall = time.perf_counter() - start
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[1].attempts == 5
        assert "InjectedFault" in outcomes[1].error
        # 4 retry sleeps at nominal 0.2s each would be ~0.8s un-budgeted;
        # the 0.25s budget must cap the total well below that.
        assert wall < 0.6
        assert _counters()["faults.injected.job-exception"] == 5


class TestPoolInjection:
    def test_worker_death_degrades_pool_to_serial(self, tiny_config):
        set_fault_plan(
            FaultPlan(rules=(FaultRule(kind="worker-death", match="art/*", attempts=(1,)),))
        )
        tracer = RecordingTracer()
        set_tracer(tracer)
        engine = ProcessPoolEngine(2, max_retries=1, backoff_s=0.0, job_runner=_echo_runner)
        with engine:
            jobs = specs_for(tiny_config, [("ft", "shared"), ("art", "shared")])
            outcomes = engine.run(jobs)
        assert all(o.ok for o in outcomes)
        # The doomed job retried in-process after the pool broke.
        assert outcomes[1].attempts == 2
        assert "serial" in outcomes[1].engine
        assert engine.degraded_reasons
        assert _counters()["exec.degraded_to_serial"] == 1
        assert _counters()["faults.injected.worker-death"] == 1
        degraded = [e for e in tracer.events if e.kind == "engine_degraded"]
        assert len(degraded) == 1
        assert "died" in degraded[0].reason

    def test_pool_announces_same_counts_as_serial(self, tiny_config):
        """The parent-side announcement replays the deterministic plan, so
        serial and pool runs record identical injection counters."""
        plan = FaultPlan(
            seed=3, rules=(FaultRule(kind="job-exception", rate=0.6, attempts=(1,)),)
        )
        jobs = specs_for(
            tiny_config,
            [("ft", "shared"), ("cg", "shared"), ("swim", "shared"), ("art", "shared")],
        )
        set_fault_plan(plan)
        serial = SerialEngine(max_retries=1, backoff_s=0.0, job_runner=_echo_runner)
        assert all(o.ok for o in serial.run(jobs))
        serial_count = _counters().get("faults.injected.job-exception", 0)
        assert serial_count > 0
        METRICS.reset()
        pool = ProcessPoolEngine(2, max_retries=1, backoff_s=0.0, job_runner=_echo_runner)
        with pool:
            assert all(o.ok for o in pool.run(jobs))
        assert _counters().get("faults.injected.job-exception", 0) == serial_count


class TestArtifactCorruption:
    def test_store_put_is_bitten_and_next_get_recovers(self, tmp_path, tiny_config):
        store = ResultStore(tmp_path)
        spec = JobSpec("ft", "shared", tiny_config)
        result = _dummy_result(spec)
        set_fault_plan(FaultPlan(rules=(FaultRule(kind="artifact-corruption"),)))
        path = store.put(spec, result)
        assert _counters()["faults.injected.artifact-corruption"] == 1
        intact = len(
            json.dumps(
                {
                    "version": store.version,
                    "spec": spec.canonical(),
                    "digest": spec.digest,
                    "result": result.to_dict(),
                },
                separators=(",", ":"),
            )
        )
        assert path.stat().st_size < intact
        # The corrupt entry is evicted as a miss, never an error...
        set_fault_plan(None)
        assert store.get(spec) is None
        assert store.corrupt == 1
        # ...and a clean re-publish round-trips.
        store.put(spec, result)
        assert store.get(spec) == result

    def test_prep_store_manifest_is_bitten(self, tmp_path):
        np = pytest.importorskip("numpy")
        from repro.prep.store import PrepStore

        store = PrepStore(tmp_path)
        key = {"program": "ft", "n": 1}
        arrays = {"a": np.arange(4, dtype=np.int64)}
        set_fault_plan(FaultPlan(rules=(FaultRule(kind="artifact-corruption"),)))
        store.put(key, arrays)
        set_fault_plan(None)
        assert store.get(key) is None
        assert store.corrupt == 1
