"""Tests for the private L1 cache and the batch trace filter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.cache.l1 import PrivateCache, simulate_l1_filter

from .conftest import line_address


@pytest.fixture
def geo():
    return CacheGeometry(sets=4, ways=2, line_bytes=64)


class TestPrivateCache:
    def test_hit_after_miss(self, geo):
        c = PrivateCache(geo)
        assert c.access(100) is False
        assert c.access(100) is True

    def test_same_line_different_offsets_hit(self, geo):
        c = PrivateCache(geo)
        c.access(128)
        assert c.access(129) is True
        assert c.access(191) is True

    def test_lru_within_set(self, geo):
        c = PrivateCache(geo)
        a = [line_address(geo, 0, t) for t in range(3)]
        c.access(a[0])
        c.access(a[1])
        c.access(a[0])  # refresh 0
        c.access(a[2])  # evicts 1
        assert c.access(a[0]) is True
        assert c.access(a[1]) is False

    def test_stats_single_thread(self, geo):
        c = PrivateCache(geo)
        c.access(0)
        c.access(0)
        assert c.stats.accesses == [2]
        assert c.stats.hits == [1]


class TestBatchFilter:
    def test_matches_object_cache(self, geo, rng):
        addrs = rng.integers(0, 4096, size=2000, dtype=np.int64)
        mask = simulate_l1_filter(addrs, geo)
        ref = PrivateCache(geo)
        expected = np.array([ref.access(int(a)) for a in addrs])
        assert np.array_equal(mask, expected)

    def test_empty_trace(self, geo):
        assert simulate_l1_filter(np.empty(0, dtype=np.int64), geo).size == 0

    def test_repeated_address_all_hits_after_first(self, geo):
        addrs = np.full(10, 512, dtype=np.int64)
        mask = simulate_l1_filter(addrs, geo)
        assert not mask[0]
        assert mask[1:].all()

    def test_streaming_word_stride_hits_within_line(self, geo):
        # Sequential 8-byte words: 1 miss per 8 accesses (64 B lines).
        addrs = np.arange(0, 64 * 16, 8, dtype=np.int64)
        mask = simulate_l1_filter(addrs, geo)
        assert int((~mask).sum()) == 16

    def test_streaming_line_stride_never_hits(self, geo):
        addrs = np.arange(0, 64 * 1000, 64, dtype=np.int64)
        mask = simulate_l1_filter(addrs, geo)
        assert not mask.any()

    def test_2d_input_rejected(self, geo):
        with pytest.raises(ValueError):
            simulate_l1_filter(np.zeros((2, 2), dtype=np.int64), geo)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2**20), min_size=1, max_size=500))
    def test_property_matches_reference(self, addr_list):
        geo = CacheGeometry(sets=2, ways=2, line_bytes=64)
        addrs = np.array(addr_list, dtype=np.int64)
        mask = simulate_l1_filter(addrs, geo)
        ref = PrivateCache(geo)
        expected = np.array([ref.access(int(a)) for a in addrs])
        assert np.array_equal(mask, expected)
