"""Focused tests for the multi-application engine internals."""

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.shared import PartitionedSharedCache
from repro.cpu.streams import CompiledProgram, L2Stream
from repro.cpu.timing import TimingModel
from repro.multiapp.allocator import MissProportionalOSAllocator
from repro.multiapp.engine import MultiAppEngine
from repro.multiapp.runtime import AppRuntime


def stream(addrs, d_cycles=10.0, timing=None):
    timing = timing or TimingModel()
    addrs = np.asarray(addrs, dtype=np.int64)
    n = addrs.size
    return L2Stream(
        addresses=addrs,
        d_instructions=np.full(n, 10, dtype=np.int64),
        d_cycles=np.full(n, d_cycles, dtype=np.float64),
        miss_cycles=np.full(n, timing.mem_cycles),
        tail_instructions=0,
        tail_cycles=0.0,
        total_instructions=10 * n,
        l1_accesses=n,
        l1_hits=0,
    )


def program(name, sections):
    return CompiledProgram(
        name=name,
        n_threads=len(sections[0]),
        sections=tuple(tuple(s) for s in sections),
        meta={},
    )


@pytest.fixture
def geo():
    return CacheGeometry(sets=4, ways=8, line_bytes=64)


class TestMultiAppEngine:
    def test_independent_completion(self, geo):
        # App 0 has twice the work of app 1.
        a0 = program("a0", [[stream(np.arange(10) * 64)], [stream(np.arange(10) * 64)]][:1] * 2)
        a1 = program("a1", [[stream(np.arange(10) * 64 + 1 << 20)]])
        l2 = PartitionedSharedCache(geo, 2, enforce_partition=False)
        res = MultiAppEngine([a0, a1], l2, TimingModel(),
                             interval_instructions=1000).run()
        assert res.apps[0].completion_cycles > res.apps[1].completion_cycles
        assert res.total_cycles == res.apps[0].completion_cycles

    def test_barriers_are_app_local(self, geo):
        # App 0: one fast + one slow thread (must barrier together).
        # App 1: one fast thread (must NOT wait for app 0).
        fast = stream([0], d_cycles=5.0)
        slow = stream([64], d_cycles=5000.0)
        other = stream([1 << 20], d_cycles=5.0)
        a0 = program("a0", [[fast, slow]])
        a1 = program("a1", [[other]])
        l2 = PartitionedSharedCache(geo, 3, enforce_partition=False)
        res = MultiAppEngine([a0, a1], l2, TimingModel(),
                             interval_instructions=10_000).run()
        assert res.apps[1].completion_cycles < res.apps[0].completion_cycles / 10

    def test_thread_count_mismatch_rejected(self, geo):
        a0 = program("a0", [[stream([0])]])
        l2 = PartitionedSharedCache(geo, 3, enforce_partition=False)
        with pytest.raises(ValueError):
            MultiAppEngine([a0], l2, TimingModel())

    def test_runtime_count_mismatch_rejected(self, geo):
        a0 = program("a0", [[stream([0])]])
        l2 = PartitionedSharedCache(geo, 1)
        with pytest.raises(ValueError):
            MultiAppEngine([a0], l2, TimingModel(), runtimes=[])

    def test_budgets_redistributed_at_epochs(self, geo):
        # App 0 misses heavily (long distinct stream), app 1 barely.
        a0_secs = [[stream(np.arange(40) * 64 + s * 4096)] for s in range(4)]
        a1_secs = [[stream(np.full(40, 1 << 20))] for _ in range(4)]
        a0 = program("a0", a0_secs)
        a1 = program("a1", a1_secs)
        l2 = PartitionedSharedCache(geo, 2)
        runtimes = [AppRuntime(1, 4, min_ways=1), AppRuntime(1, 4, min_ways=1)]
        alloc = MissProportionalOSAllocator(2, 8, min_ways_per_app=1)
        res = MultiAppEngine(
            [a0, a1], l2, TimingModel(), runtimes, alloc,
            interval_instructions=100, os_epoch_intervals=1,
        ).run()
        assert res.budget_trace
        final_budgets = res.budget_trace[-1][1]
        assert final_budgets[0] > final_budgets[1]

    def test_per_app_interval_indices(self, geo):
        a0 = program("a0", [[stream(np.arange(20) * 64)]])
        a1 = program("a1", [[stream(np.arange(20) * 64 + (1 << 20))]])
        l2 = PartitionedSharedCache(geo, 2, enforce_partition=False)
        res = MultiAppEngine([a0, a1], l2, TimingModel(),
                             interval_instructions=50).run()
        for app_res in res.apps:
            indices = [o.index for o in app_res.intervals]
            assert indices == sorted(indices)
            assert indices[0] == 0
