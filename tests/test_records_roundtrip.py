"""Round-trip tests: to_dict/from_dict must be lossless for every record
the result store persists."""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.stats import StatsSnapshot
from repro.core.records import RunResult
from repro.sim.config import SystemConfig
from repro.sim.driver import run_application
from repro.sync.barrier import BarrierLog


def through_json(data: dict) -> dict:
    """Serialise + parse, as the on-disk store does."""
    return json.loads(json.dumps(data))


class TestRunResultRoundtrip:
    def test_quick_config_run_roundtrips_losslessly(self, quick_config):
        r = run_application("swim", "model-based", quick_config)
        assert r.intervals, "need a run with interval records"
        assert r.barriers is not None and r.barriers.events
        restored = RunResult.from_dict(through_json(r.to_dict()))
        assert restored == r

    def test_roundtrip_preserves_derived_metrics(self, tiny_config):
        r = run_application("cg", "shared", tiny_config)
        restored = RunResult.from_dict(through_json(r.to_dict()))
        assert restored.performance == r.performance
        assert restored.l1_hit_rate() == r.l1_hit_rate()
        assert restored.inter_thread_share_of_all_accesses() == (
            r.inter_thread_share_of_all_accesses()
        )
        assert restored.cpi_series(0) == r.cpi_series(0)
        assert restored.miss_series(0) == r.miss_series(0)
        assert restored.targets_series() == r.targets_series()
        assert restored.barriers.critical_thread_histogram() == (
            r.barriers.critical_thread_histogram()
        )

    def test_roundtrip_without_barriers(self, quick_config):
        r = run_application("ft", "shared", quick_config)
        r.barriers = None
        assert RunResult.from_dict(through_json(r.to_dict())) == r


counts = st.tuples(*[st.integers(min_value=0, max_value=10**9)] * 2)


@given(
    accesses=counts, hits=counts, misses=counts, evictions=counts,
    inter_hits=counts, inter_evictions=counts, intra_hits=counts,
)
@settings(max_examples=50, deadline=None)
def test_snapshot_roundtrip_property(
    accesses, hits, misses, evictions, inter_hits, inter_evictions, intra_hits
):
    snap = StatsSnapshot(
        accesses=accesses, hits=hits, misses=misses, evictions=evictions,
        inter_thread_hits=inter_hits, inter_thread_evictions=inter_evictions,
        intra_thread_hits=intra_hits,
    )
    assert StatsSnapshot.from_dict(through_json(snap.to_dict())) == snap


@given(
    arrivals=st.lists(
        st.tuples(*[st.floats(min_value=0, max_value=1e12, allow_nan=False)] * 3),
        min_size=0, max_size=10,
    )
)
@settings(max_examples=50, deadline=None)
def test_barrier_log_roundtrip_property(arrivals):
    log = BarrierLog(3)
    for i, arr in enumerate(arrivals):
        log.record(i, list(arr))
    assert BarrierLog.from_dict(through_json(log.to_dict())) == log


class TestConfigRoundtrip:
    def test_default_and_variants(self):
        for config in (
            SystemConfig.default(),
            SystemConfig.eight_core(),
            SystemConfig.quick(),
            SystemConfig.default().with_(seed=99, min_ways=0),
        ):
            assert SystemConfig.from_dict(through_json(config.to_dict())) == config
