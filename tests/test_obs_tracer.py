"""Tests for tracers and events (repro.obs.tracer / repro.obs.events)."""

import dataclasses
import json

import pytest

from repro.obs import (
    EVENT_KINDS,
    NULL_TRACER,
    IntervalEvent,
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    RepartitionEvent,
    SpanEvent,
    get_tracer,
    set_tracer,
)
from repro.sim.config import SystemConfig
from repro.sim.driver import clear_program_cache, run_application


def _interval_event(index=0):
    return IntervalEvent(
        app="swim",
        policy="model-based",
        index=index,
        cpi=(1.0, 2.0),
        misses=(3, 4),
        ways=(4, 4),
        critical_thread=1,
    )


class TestEvents:
    def test_events_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            _interval_event().index = 5

    def test_to_dict_excludes_kind(self):
        d = _interval_event().to_dict()
        assert "kind" not in d  # the tracer adds it at the envelope level
        assert d["app"] == "swim"
        assert d["critical_thread"] == 1

    def test_kind_registry_is_consistent(self):
        assert "interval" in EVENT_KINDS
        assert "repartition" in EVENT_KINDS
        for kind, cls in EVENT_KINDS.items():
            assert cls.kind == kind


class TestNullTracer:
    def test_disabled_and_noop(self):
        t = NullTracer()
        assert not t.enabled
        t.emit(_interval_event())  # must not raise

    def test_span_is_a_nullcontext(self):
        with NULL_TRACER.span("anything"):
            pass


class TestRecordingTracer:
    def test_records_events_and_wire_dicts(self):
        t = RecordingTracer()
        t.emit(_interval_event(0))
        t.emit(_interval_event(1))
        assert len(t) == 2
        assert t.records[0]["kind"] == "interval"
        assert t.records[0]["ts"] >= 0.0
        assert t.records[1]["index"] == 1

    def test_by_kind_filters(self):
        t = RecordingTracer()
        t.emit(_interval_event())
        t.emit(
            RepartitionEvent(
                app="swim", policy="model-based", index=0,
                old=(4, 4), new=(5, 3), trigger="model", moved_ways=1,
            )
        )
        assert len(t.by_kind("interval")) == 1
        assert len(t.by_kind("repartition")) == 1
        assert t.by_kind("job_end") == []

    def test_span_emits_span_event(self):
        t = RecordingTracer()
        with t.span("prepare"):
            pass
        (ev,) = t.by_kind("span")
        assert isinstance(ev, SpanEvent)
        assert ev.name == "prepare"
        assert ev.duration_s >= 0.0


class TestJsonlTracer:
    def test_streams_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTracer(path) as t:
            t.emit(_interval_event(0))
            t.emit(_interval_event(1))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["kind"] == "interval"
        assert first["cpi"] == [1.0, 2.0]
        assert t.n_events == 2

    def test_close_is_idempotent(self, tmp_path):
        t = JsonlTracer(tmp_path / "t.jsonl")
        t.close()
        t.close()


class TestGlobalTracer:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER

    def test_set_and_restore(self):
        t = RecordingTracer()
        previous = set_tracer(t)
        assert previous is NULL_TRACER
        assert get_tracer() is t
        set_tracer(previous)
        assert get_tracer() is NULL_TRACER

    def test_set_none_restores_null(self):
        set_tracer(RecordingTracer())
        set_tracer(None)
        assert get_tracer() is NULL_TRACER


class TestTracingIsPureObservation:
    def test_traced_run_is_byte_identical_to_untraced(self, tiny_config):
        config = tiny_config
        plain = run_application("swim", "model-based", config)
        clear_program_cache()  # force a fresh build under tracing
        tracer = RecordingTracer()
        traced = run_application("swim", "model-based", config, tracer=tracer)
        assert len(tracer) > 0
        plain_json = json.dumps(plain.to_dict(), sort_keys=True)
        traced_json = json.dumps(traced.to_dict(), sort_keys=True)
        assert plain_json == traced_json

    def test_run_emits_interval_and_convergence_per_interval(self, tiny_config):
        tracer = RecordingTracer()
        result = run_application("swim", "model-based", tiny_config, tracer=tracer)
        intervals = tracer.by_kind("interval")
        assert len(intervals) == len(result.intervals)
        assert len(tracer.by_kind("convergence")) == len(result.intervals)
        assert [e.index for e in intervals] == list(range(len(intervals)))
        spans = {e.name for e in tracer.by_kind("span")}
        assert {"prepare", "simulate"} <= spans

    def test_repartition_events_match_audit_trail(self, tiny_config):
        tracer = RecordingTracer()
        result = run_application("swim", "cpi-proportional", tiny_config, tracer=tracer)
        changed = [
            rec for rec in result.intervals
            if rec.new_targets is not None and rec.new_targets != rec.observation.targets
        ]
        reparts = tracer.by_kind("repartition")
        assert len(reparts) == len(changed)
        for ev, rec in zip(reparts, changed):
            assert ev.old == rec.observation.targets
            assert ev.new == rec.new_targets
            assert ev.trigger == "cpi-proportional"

    def test_model_policy_reports_predictions_after_bootstrap(self):
        from repro.cache.geometry import CacheGeometry

        config = SystemConfig(
            n_threads=4,
            l2_geometry=CacheGeometry(sets=16, ways=8),
            interval_instructions=1_500,
            n_intervals=8,
            sections_per_interval=2,
        )
        tracer = RecordingTracer()
        run_application("swim", "model-based", config, tracer=tracer)
        intervals = tracer.by_kind("interval")
        # The prediction pairs with the *next* interval: nothing during
        # bootstrap, model forecasts afterwards.
        assert intervals[0].predicted_cpi is None
        late = [e for e in intervals if e.predicted_cpi is not None]
        assert late, "model-based run never paired a prediction"
        for ev in late:
            assert len(ev.predicted_cpi) == 4
