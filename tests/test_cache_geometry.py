"""Tests for cache geometry and address decomposition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry


class TestConstruction:
    def test_basic(self):
        g = CacheGeometry(sets=32, ways=32, line_bytes=64)
        assert g.size_bytes == 32 * 32 * 64

    def test_from_size(self):
        g = CacheGeometry.from_size(64 * 1024, ways=32, line_bytes=64)
        assert g.sets == 32
        assert g.size_bytes == 64 * 1024

    def test_from_size_paper_l1(self):
        g = CacheGeometry.from_size(8 * 1024, ways=4, line_bytes=64)
        assert g.sets == 32

    def test_from_size_indivisible_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry.from_size(1000, ways=3, line_bytes=64)

    def test_from_size_not_line_multiple_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry.from_size(100, ways=2, line_bytes=64)

    def test_nonpow2_sets_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(sets=3, ways=4)

    def test_nonpow2_line_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(sets=4, ways=4, line_bytes=48)

    def test_zero_ways_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(sets=4, ways=0)

    def test_frozen(self):
        g = CacheGeometry(sets=4, ways=4)
        with pytest.raises(AttributeError):
            g.sets = 8  # type: ignore[misc]

    def test_hashable(self):
        assert len({CacheGeometry(4, 4), CacheGeometry(4, 4), CacheGeometry(8, 4)}) == 2


class TestAddressing:
    def test_offset_and_index_bits(self):
        g = CacheGeometry(sets=32, ways=4, line_bytes=64)
        assert g.offset_bits == 6
        assert g.index_bits == 5

    def test_set_index_wraps(self):
        g = CacheGeometry(sets=4, ways=2, line_bytes=64)
        assert g.set_index(0) == 0
        assert g.set_index(64) == 1
        assert g.set_index(64 * 4) == 0

    def test_tag_excludes_index_and_offset(self):
        g = CacheGeometry(sets=4, ways=2, line_bytes=64)
        assert g.tag(0) == 0
        assert g.tag(64 * 4) == 1
        # Same tag, different sets.
        assert g.tag(64) == 0

    def test_line_address_masks_offset(self):
        g = CacheGeometry(sets=4, ways=2, line_bytes=64)
        assert g.line_address(130) == 128

    def test_way_bytes(self):
        g = CacheGeometry(sets=32, ways=32, line_bytes=64)
        assert g.way_bytes() == 32 * 64

    def test_sequential_lines_stride_sets_uniformly(self):
        g = CacheGeometry(sets=8, ways=2, line_bytes=64)
        sets = [g.set_index(i * 64) for i in range(32)]
        # Each set hit exactly 4 times.
        assert all(sets.count(s) == 4 for s in range(8))

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=2**60))
    def test_property_roundtrip(self, addr):
        g = CacheGeometry(sets=32, ways=4, line_bytes=64)
        s = g.set_index(addr)
        t = g.tag(addr)
        rebuilt = (t << (g.offset_bits + g.index_bits)) | (s << g.offset_bits)
        assert rebuilt == g.line_address(addr)
        assert 0 <= s < g.sets
