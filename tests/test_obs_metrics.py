"""Tests for the metrics registry (repro.obs.metrics)."""

import json

import pytest

from repro.obs.metrics import METRICS, Counter, Gauge, Metrics, Timer


class TestPrimitives:
    def test_counter_increments(self):
        c = Counter("n")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="gauge"):
            Counter("n").inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge("level")
        g.set(7)
        g.set(2.5)
        assert g.value == 2.5

    def test_timer_aggregates(self):
        t = Timer("t")
        t.observe(0.2)
        t.observe(0.6)
        assert t.count == 2
        assert t.total_s == pytest.approx(0.8)
        assert t.max_s == pytest.approx(0.6)
        assert t.mean_s == pytest.approx(0.4)

    def test_timer_mean_of_nothing_is_zero(self):
        assert Timer("t").mean_s == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        m = Metrics()
        assert m.counter("a") is m.counter("a")
        assert m.counter("a") is not m.counter("b")

    def test_type_mismatch_is_an_error(self):
        m = Metrics()
        m.counter("x")
        with pytest.raises(TypeError, match="Counter"):
            m.gauge("x")
        with pytest.raises(TypeError):
            m.timer("x")

    def test_span_observes_into_named_timer(self):
        m = Metrics()
        with m.span("phase"):
            pass
        t = m.timer("phase")
        assert t.count == 1
        assert t.total_s >= 0.0

    def test_span_observes_even_on_exception(self):
        m = Metrics()
        with pytest.raises(RuntimeError):
            with m.span("phase"):
                raise RuntimeError("boom")
        assert m.timer("phase").count == 1

    def test_timed_decorator_defaults_to_qualname(self):
        m = Metrics()

        @m.timed()
        def work(x):
            return x + 1

        assert work(1) == 2
        (name,) = m.snapshot()["timers"].keys()
        assert "work" in name

    def test_timed_decorator_explicit_name(self):
        m = Metrics()

        @m.timed("store.put")
        def put():
            return "ok"

        put()
        put()
        assert m.timer("store.put").count == 2

    def test_snapshot_is_json_safe_and_grouped(self):
        m = Metrics()
        m.counter("c").inc(3)
        m.gauge("g").set(1.5)
        m.timer("t").observe(0.1)
        snap = m.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["timers"]["t"]["count"] == 1

    def test_reset_zeroes_but_keeps_registry(self):
        m = Metrics()
        c = m.counter("c")
        c.inc(9)
        m.gauge("g").set(4)
        m.timer("t").observe(1.0)
        m.reset()
        assert m.counter("c") is c
        assert c.value == 0
        assert m.gauge("g").value == 0.0
        assert m.timer("t").count == 0
        assert m.timer("t").max_s == 0.0

    def test_global_registry_exists(self):
        METRICS.counter("test.only").inc()
        assert METRICS.snapshot()["counters"]["test.only"] == 1
