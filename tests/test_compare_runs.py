"""Comparator conformance: ``repro compare-runs`` on fabricated stores.

Cells are fabricated straight into :class:`ResultStore` trees (no
simulation), so every edge the comparator must survive is cheap to
stage: identical stores, a single perturbed cell (which must be *named*,
with the offending metric), tolerance boundaries, foreign grids, empty
and partially-populated stores, version-mismatched namespaces and
corrupt entries.  The hard rule throughout: a comparison that cannot be
performed is a machine-readable ``incomparable`` verdict (exit 4) —
never a crash, and never a false ``clean``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.cache.stats import StatsSnapshot
from repro.core.records import RunResult
from repro.exec.grid import SweepGrid
from repro.exec.store import ResultStore
from repro.spec.compare import (
    EXIT_CLEAN,
    EXIT_INCOMPARABLE,
    EXIT_REGRESSION,
    compare_runs,
)

GRID = SweepGrid.build(
    apps=["ft", "cg"], policies=["shared", "static-equal"],
    intervals=3, interval_instructions=2000,
)


def _result(spec, total_cycles=10_000.0, miss_bump=0) -> RunResult:
    n = spec.config.n_threads
    return RunResult(
        app=spec.app,
        policy=spec.policy,
        n_threads=n,
        total_cycles=float(total_cycles),
        thread_instructions=[1000] * n,
        thread_busy_cycles=[800.0] * n,
        thread_stall_cycles=[200.0] * n,
        l2_totals=StatsSnapshot(
            accesses=[300] * n, hits=[200] * n, misses=[100 + miss_bump] * n,
            evictions=[0] * n, inter_thread_hits=[0] * n,
            inter_thread_evictions=[0] * n, intra_thread_hits=[200] * n,
        ),
        thread_l1_accesses=[5000] * n,
        thread_l1_hits=[4700] * n,
        intervals=[],
        barriers=None,
    )


def _populate(root: Path, grid: SweepGrid = GRID, *, skip=(), cycles=None,
              misses=None) -> ResultStore:
    """File one fabricated result per grid cell (minus ``skip`` labels);
    ``cycles``/``misses`` override per label for perturbation."""
    store = ResultStore(root)
    for spec in grid.specs():
        if spec.label in skip:
            continue
        store.put(
            spec,
            _result(
                spec,
                total_cycles=(cycles or {}).get(spec.label, 10_000.0),
                miss_bump=(misses or {}).get(spec.label, 0),
            ),
        )
    return store


class TestCleanAndRegression:
    def test_identical_stores_are_clean(self, tmp_path):
        _populate(tmp_path / "a")
        _populate(tmp_path / "b")
        comparison = compare_runs(tmp_path / "a", tmp_path / "b", grid=GRID)
        assert comparison.verdict == "clean"
        assert comparison.exit_code == EXIT_CLEAN
        assert comparison.counts() == {"equal": 4, "changed": 0, "added": 0, "removed": 0}

    def test_perturbed_cell_is_detected_and_named(self, tmp_path):
        _populate(tmp_path / "a")
        _populate(tmp_path / "b", cycles={"cg/static-equal": 10_500.0})
        comparison = compare_runs(tmp_path / "a", tmp_path / "b", grid=GRID)
        assert comparison.verdict == "regression"
        assert comparison.exit_code == EXIT_REGRESSION
        changed = [c for c in comparison.cells if c.status == "changed"]
        assert len(changed) == 1
        assert changed[0].label == "cg/static-equal seed=1 t=4"
        assert changed[0].metrics["total_cycles"]["beyond"]
        assert not changed[0].metrics["l2_misses"]["beyond"]
        rendered = comparison.format()
        assert "cg/static-equal seed=1 t=4" in rendered
        assert "total_cycles" in rendered

    def test_perturbed_misses_flag_the_other_metric(self, tmp_path):
        _populate(tmp_path / "a")
        _populate(tmp_path / "b", misses={"ft/shared": 7})
        comparison = compare_runs(tmp_path / "a", tmp_path / "b", grid=GRID)
        [changed] = [c for c in comparison.cells if c.status == "changed"]
        assert changed.label.startswith("ft/shared")
        assert changed.metrics["l2_misses"]["beyond"]
        assert not changed.metrics["total_cycles"]["beyond"]

    def test_missing_cell_in_b_is_removed_and_a_regression(self, tmp_path):
        _populate(tmp_path / "a")
        _populate(tmp_path / "b", skip={"ft/shared"})
        comparison = compare_runs(tmp_path / "a", tmp_path / "b", grid=GRID)
        assert comparison.verdict == "regression"
        assert comparison.counts()["removed"] == 1

    def test_extra_cell_in_b_is_added_not_a_regression(self, tmp_path):
        _populate(tmp_path / "a", skip={"cg/shared"})
        _populate(tmp_path / "b")
        comparison = compare_runs(tmp_path / "a", tmp_path / "b", grid=GRID)
        assert comparison.verdict == "clean"
        assert comparison.counts()["added"] == 1

    def test_without_a_grid_every_stored_cell_is_compared(self, tmp_path):
        _populate(tmp_path / "a")
        _populate(tmp_path / "b", cycles={"ft/shared": 1.0})
        comparison = compare_runs(tmp_path / "a", tmp_path / "b")
        assert comparison.verdict == "regression"
        assert sum(comparison.counts().values()) == 4


class TestTolerances:
    @pytest.mark.parametrize(
        ("bump", "tolerance", "verdict"),
        [
            (500.0, 0.06, "clean"),       # +5% within 6%
            (500.0, 0.05, "clean"),       # exactly at the boundary: allowed
            (500.0, 0.049, "regression"),  # just beyond
            (500.0, 0.0, "regression"),   # zero tolerance: any drift fails
        ],
    )
    def test_relative_tolerance_boundary(self, tmp_path, bump, tolerance, verdict):
        _populate(tmp_path / "a")
        _populate(tmp_path / "b", cycles={"ft/shared": 10_000.0 + bump})
        comparison = compare_runs(
            tmp_path / "a", tmp_path / "b", grid=GRID,
            tolerances={"total_cycles": tolerance},
        )
        assert comparison.verdict == verdict

    def test_tolerance_applies_per_metric(self, tmp_path):
        _populate(tmp_path / "a")
        _populate(tmp_path / "b", cycles={"ft/shared": 10_100.0}, misses={"ft/shared": 50})
        comparison = compare_runs(
            tmp_path / "a", tmp_path / "b", grid=GRID,
            tolerances={"total_cycles": 0.5},  # cycles forgiven, misses not
        )
        [changed] = [c for c in comparison.cells if c.status == "changed"]
        assert changed.metrics["l2_misses"]["beyond"]
        assert not changed.metrics["total_cycles"]["beyond"]


class TestIncomparable:
    def test_missing_store_dir(self, tmp_path):
        _populate(tmp_path / "a")
        comparison = compare_runs(tmp_path / "a", tmp_path / "nope")
        assert comparison.verdict == "incomparable"
        assert comparison.exit_code == EXIT_INCOMPARABLE
        assert "does not exist" in comparison.reason

    def test_empty_store(self, tmp_path):
        _populate(tmp_path / "a")
        (tmp_path / "b").mkdir()
        comparison = compare_runs(tmp_path / "a", tmp_path / "b")
        assert comparison.verdict == "incomparable"
        assert "empty" in comparison.reason

    def test_version_mismatched_namespaces(self, tmp_path):
        _populate(tmp_path / "a")
        store_b = ResultStore(tmp_path / "b", version="0.0.1")
        for spec in GRID.specs():
            store_b.put(spec, _result(spec))
        comparison = compare_runs(tmp_path / "a", tmp_path / "b")
        assert comparison.verdict == "incomparable"
        assert "different simulator versions" in comparison.reason
        assert "v0.0.1" in comparison.reason

    def test_foreign_grid_is_refused_not_clean(self, tmp_path):
        _populate(tmp_path / "a")
        _populate(tmp_path / "b")
        foreign = SweepGrid.build(apps=["swim"], policies=["shared"])
        comparison = compare_runs(tmp_path / "a", tmp_path / "b", grid=foreign)
        assert comparison.verdict == "incomparable"
        assert "foreign grid" in comparison.reason

    def test_partially_populated_stores_compare_what_exists(self, tmp_path):
        # A journal killed mid-sweep leaves a store with a cell subset;
        # that is comparable (missing cells classify), not incomparable.
        _populate(tmp_path / "a", skip={"cg/shared", "cg/static-equal"})
        _populate(tmp_path / "b", skip={"cg/static-equal"})
        comparison = compare_runs(tmp_path / "a", tmp_path / "b", grid=GRID)
        assert comparison.verdict == "clean"
        counts = comparison.counts()
        assert counts == {"equal": 2, "changed": 0, "added": 1, "removed": 0}

    def test_corrupt_entries_are_skipped_never_fatal(self, tmp_path):
        _populate(tmp_path / "a")
        _populate(tmp_path / "b")
        victim = sorted((tmp_path / "b").glob("v*/*/*.json"))[0]
        victim.write_text("{torn")
        comparison = compare_runs(tmp_path / "a", tmp_path / "b", grid=GRID)
        assert comparison.skipped_b == 1
        # The corrupt cell reads as missing from b -> removed -> regression.
        assert comparison.verdict == "regression"
        assert comparison.counts()["removed"] == 1

    def test_all_cells_corrupt_is_incomparable(self, tmp_path):
        _populate(tmp_path / "a")
        _populate(tmp_path / "b")
        for side in ("a", "b"):
            for path in (tmp_path / side).glob("v*/*/*.json"):
                path.write_text("not json")
        comparison = compare_runs(tmp_path / "a", tmp_path / "b")
        assert comparison.verdict == "incomparable"
        assert "no readable cells" in comparison.reason

    def test_to_dict_is_machine_readable(self, tmp_path):
        comparison = compare_runs(tmp_path / "a", tmp_path / "b")
        payload = json.loads(json.dumps(comparison.to_dict()))
        assert payload["verdict"] == "incomparable"
        assert payload["reason"]


class TestCli:
    def _spec_file(self, tmp_path) -> str:
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "spec_version": 1,
            "grid": {"apps": ["ft", "cg"], "policies": ["shared", "static-equal"]},
            "config": {"intervals": 3, "interval_instructions": 2000},
        }))
        return str(path)

    def test_exit_0_on_clean(self, tmp_path, capsys):
        _populate(tmp_path / "a")
        _populate(tmp_path / "b")
        rc = main(["compare-runs", str(tmp_path / "a"), str(tmp_path / "b"),
                   "--spec", self._spec_file(tmp_path)])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_1_names_the_perturbed_cell(self, tmp_path, capsys):
        _populate(tmp_path / "a")
        _populate(tmp_path / "b", cycles={"ft/shared": 11_000.0})
        rc = main(["compare-runs", str(tmp_path / "a"), str(tmp_path / "b"),
                   "--spec", self._spec_file(tmp_path)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "ft/shared seed=1 t=4" in out and "total_cycles" in out

    def test_exit_4_on_incomparable(self, tmp_path):
        _populate(tmp_path / "a")
        assert main(["compare-runs", str(tmp_path / "a"), str(tmp_path / "gone")]) == 4

    def test_tolerance_flag_overrides(self, tmp_path):
        _populate(tmp_path / "a")
        _populate(tmp_path / "b", cycles={"ft/shared": 10_400.0})
        argv = ["compare-runs", str(tmp_path / "a"), str(tmp_path / "b")]
        assert main(argv) == 1
        assert main([*argv, "--tolerance", "total_cycles=0.05"]) == 0
        assert main([*argv, "--tolerance", "bogus=0.05"]) == 2
        assert main([*argv, "--tolerance", "total_cycles=-1"]) == 2

    def test_json_output(self, tmp_path, capsys):
        _populate(tmp_path / "a")
        _populate(tmp_path / "b", cycles={"ft/shared": 11_000.0})
        rc = main(["compare-runs", str(tmp_path / "a"), str(tmp_path / "b"), "--json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "regression"
        assert payload["counts"]["changed"] == 1
        [cell] = payload["cells"]
        assert cell["label"] == "ft/shared seed=1 t=4"
