"""Tests for repro.exec.journal: durability, torn tails, grid identity."""

from __future__ import annotations

import json

import pytest

from repro.exec.journal import (
    JournalEntry,
    JournalMismatchError,
    SweepJournal,
    grid_digest,
)
from repro.obs import METRICS

GRID = {"apps": ["ft"], "policies": ["shared"], "seeds": [1], "version": "x"}
OTHER_GRID = {"apps": ["cg"], "policies": ["shared"], "seeds": [1], "version": "x"}


def _entry(key: str = "k1", *, error: str | None = None) -> JournalEntry:
    return JournalEntry(
        key=key,
        app="ft",
        policy="shared",
        seed=1,
        n_threads=4,
        total_cycles=None if error else 123.0,
        source="run",
        error=error,
    )


class TestJournalEntry:
    def test_roundtrip_and_ok(self):
        good = _entry()
        bad = _entry(error="boom")
        assert good.ok and not bad.ok
        assert JournalEntry.from_dict(good.to_dict()) == good
        assert JournalEntry.from_dict(bad.to_dict()) == bad


class TestSweepJournal:
    def test_begin_append_load_roundtrip(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with SweepJournal.begin(path, GRID) as journal:
            journal.append(_entry("k1"))
            journal.append(_entry("k2", error="boom"))
        header, entries, torn = SweepJournal.load(path)
        assert header["grid_digest"] == grid_digest(GRID)
        assert header["grid"] == GRID
        assert torn == 0
        assert set(entries) == {"k1", "k2"}
        assert entries["k1"].ok and not entries["k2"].ok
        assert METRICS.snapshot()["counters"]["sweep.journal.cells"] == 2

    def test_each_append_is_durable_on_disk(self, tmp_path):
        """Every append must be readable immediately — a SIGKILL at any
        point loses at most the in-flight cell, never a completed one."""
        path = tmp_path / "sweep.jsonl"
        with SweepJournal.begin(path, GRID) as journal:
            for i in range(3):
                journal.append(_entry(f"k{i}"))
                _, entries, _ = SweepJournal.load(path)
                assert set(entries) == {f"k{j}" for j in range(i + 1)}

    def test_torn_tail_is_dropped_not_fatal(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with SweepJournal.begin(path, GRID) as journal:
            journal.append(_entry("k1"))
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"kind": "cell", "key": "k2", "app": "ft"')  # no newline, no close
        resumed = SweepJournal.resume(path, GRID)
        try:
            assert set(resumed.entries) == {"k1"}
            assert resumed.torn_lines == 1
            # The reopened journal appends cleanly past the torn tail.
            resumed.append(_entry("k3"))
        finally:
            resumed.close()
        _, entries, torn = SweepJournal.load(path)
        assert set(entries) == {"k1", "k3"}
        assert torn == 1

    def test_last_record_wins_per_key(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with SweepJournal.begin(path, GRID) as journal:
            journal.append(_entry("k1", error="first try failed"))
            journal.append(_entry("k1"))
        _, entries, _ = SweepJournal.load(path)
        assert entries["k1"].ok

    def test_resume_missing_file_degrades_to_begin(self, tmp_path):
        path = tmp_path / "absent.jsonl"
        with SweepJournal.resume(path, GRID) as journal:
            assert journal.entries == {}
        header, _, _ = SweepJournal.load(path)
        assert header["grid_digest"] == grid_digest(GRID)

    def test_resume_refuses_foreign_grid(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        SweepJournal.begin(path, GRID).close()
        with pytest.raises(JournalMismatchError, match="different sweep grid"):
            SweepJournal.resume(path, OTHER_GRID)

    def test_resume_refuses_headerless_file(self, tmp_path):
        path = tmp_path / "not-a-journal.jsonl"
        path.write_text(json.dumps({"kind": "something-else"}) + "\n")
        with pytest.raises(JournalMismatchError, match="no header"):
            SweepJournal.resume(path, GRID)

    def test_begin_truncates_prior_content(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with SweepJournal.begin(path, GRID) as journal:
            journal.append(_entry("k1"))
        with SweepJournal.begin(path, OTHER_GRID) as journal:
            pass
        header, entries, _ = SweepJournal.load(path)
        assert header["grid_digest"] == grid_digest(OTHER_GRID)
        assert entries == {}

    def test_append_after_close_raises(self, tmp_path):
        journal = SweepJournal.begin(tmp_path / "sweep.jsonl", GRID)
        journal.close()
        with pytest.raises(ValueError, match="closed"):
            journal.append(_entry())

    def test_grid_digest_is_order_insensitive_canonical(self):
        assert grid_digest({"a": 1, "b": 2}) == grid_digest({"b": 2, "a": 1})
        assert grid_digest({"a": 1}) != grid_digest({"a": 2})
