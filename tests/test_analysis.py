"""Tests for the stack-distance / oracle-partition analysis package."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.oracle import oracle_static_policy, oracle_static_targets
from repro.analysis.partition_opt import optimal_static_partition
from repro.analysis.stackdist import COLD, lru_stack_distances, miss_curve, working_set_lines
from repro.cache.geometry import CacheGeometry
from repro.cache.shared import PartitionedSharedCache
from repro.sim.driver import run_application

from .conftest import line_address


@pytest.fixture
def geo():
    return CacheGeometry(sets=2, ways=4, line_bytes=64)


def seq(geo, set_index, *tags):
    return np.array([line_address(geo, set_index, t) for t in tags], dtype=np.int64)


class TestStackDistances:
    def test_cold_accesses(self, geo):
        d = lru_stack_distances(seq(geo, 0, 1, 2, 3), geo)
        assert list(d) == [COLD, COLD, COLD]

    def test_immediate_rereference_distance_zero(self, geo):
        d = lru_stack_distances(seq(geo, 0, 1, 1), geo)
        assert list(d) == [COLD, 0]

    def test_classic_sequence(self, geo):
        # a b c a : a's re-reference has seen b, c -> distance 2.
        d = lru_stack_distances(seq(geo, 0, 1, 2, 3, 1), geo)
        assert list(d) == [COLD, COLD, COLD, 2]

    def test_sets_independent(self, geo):
        addrs = np.concatenate([seq(geo, 0, 1), seq(geo, 1, 9), seq(geo, 0, 1)])
        d = lru_stack_distances(addrs, geo)
        assert list(d) == [COLD, COLD, 0]

    def test_2d_rejected(self, geo):
        with pytest.raises(ValueError):
            lru_stack_distances(np.zeros((2, 2), dtype=np.int64), geo)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=300))
    def test_property_curve_matches_real_cache(self, tags):
        """The Mattson curve at associativity w must equal the misses an
        actual w-way LRU cache takes on the same trace."""
        geo = CacheGeometry(sets=2, ways=4, line_bytes=64)
        addrs = np.array([line_address(geo, t % 2, t) for t in tags], dtype=np.int64)
        curve = miss_curve(addrs, geo, 4)
        for ways in (1, 2, 4):
            ref_geo = CacheGeometry(sets=2, ways=ways, line_bytes=64)
            cache = PartitionedSharedCache(ref_geo, 1, enforce_partition=False)
            misses = sum(0 if cache.access(0, int(a)) else 1 for a in addrs)
            assert curve[ways] == misses, f"ways={ways}"


class TestMissCurve:
    def test_monotone_nonincreasing(self, geo, rng):
        addrs = rng.integers(0, 1 << 12, size=2000, dtype=np.int64)
        curve = miss_curve(addrs, geo, 8)
        assert all(curve[i] >= curve[i + 1] for i in range(8))

    def test_zero_ways_all_miss(self, geo):
        addrs = seq(geo, 0, 1, 1, 1)
        assert miss_curve(addrs, geo, 4)[0] == 3

    def test_empty_trace(self, geo):
        curve = miss_curve(np.empty(0, dtype=np.int64), geo, 4)
        assert list(curve) == [0] * 5

    def test_compulsory_floor(self, geo):
        # Even at huge associativity, cold misses remain.
        addrs = seq(geo, 0, 1, 2, 3, 1, 2, 3)
        curve = miss_curve(addrs, geo, 8)
        assert curve[8] == 3

    def test_negative_ways_rejected(self, geo):
        with pytest.raises(ValueError):
            miss_curve(seq(geo, 0, 1), geo, -1)


class TestWorkingSet:
    def test_counts_distinct_lines(self, geo):
        addrs = seq(geo, 0, 1, 1, 2, 3, 2)
        assert working_set_lines(addrs, geo) == 3

    def test_empty(self, geo):
        assert working_set_lines(np.empty(0, dtype=np.int64), geo) == 0


class TestOptimalPartition:
    def test_total_objective_simple(self):
        # Thread 0's curve is steep, thread 1's flat: 0 should get more.
        c0 = np.array([100, 50, 20, 5, 1, 0, 0, 0, 0], dtype=float)
        c1 = np.array([10, 9, 8, 8, 8, 8, 8, 8, 8], dtype=float)
        out = optimal_static_partition([c0, c1], 8, min_ways=1, objective="total")
        assert out[0] > out[1]
        assert sum(out) == 8

    def test_matches_bruteforce_total(self, rng):
        curves = [np.sort(rng.random(9))[::-1] for _ in range(3)]
        out = optimal_static_partition(curves, 8, min_ways=1, objective="total")
        best = None
        for a in range(1, 7):
            for b in range(1, 8 - a):
                c = 8 - a - b
                if c < 1:
                    continue
                val = curves[0][a] + curves[1][b] + curves[2][c]
                if best is None or val < best[0]:
                    best = (val, [a, b, c])
        got = curves[0][out[0]] + curves[1][out[1]] + curves[2][out[2]]
        assert got == pytest.approx(best[0])

    def test_matches_bruteforce_max(self, rng):
        curves = [np.sort(rng.random(9))[::-1] for _ in range(3)]
        out = optimal_static_partition(curves, 8, min_ways=1, objective="max")
        best = None
        for a in range(1, 7):
            for b in range(1, 8 - a):
                c = 8 - a - b
                if c < 1:
                    continue
                val = max(curves[0][a], curves[1][b], curves[2][c])
                best = val if best is None else min(best, val)
        got = max(curves[t][out[t]] for t in range(3))
        assert got == pytest.approx(best)

    def test_min_ways_respected(self):
        c = np.zeros(9)
        out = optimal_static_partition([c, c, c], 8, min_ways=2)
        assert all(v >= 2 for v in out)

    def test_short_curve_rejected(self):
        with pytest.raises(ValueError):
            optimal_static_partition([np.zeros(4)], 8)

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError):
            optimal_static_partition([np.zeros(9)], 8, objective="median")

    def test_infeasible_rejected(self):
        with pytest.raises(ValueError):
            optimal_static_partition([np.zeros(9), np.zeros(9)], 8, min_ways=5)


class TestOracle:
    def test_targets_valid(self, tiny_config):
        targets = oracle_static_targets("cg", tiny_config, objective="max")
        assert sum(targets) == tiny_config.total_ways
        assert min(targets) >= tiny_config.min_ways

    def test_oracle_beats_equal_static_on_contended_app(self, tiny_config):
        oracle = run_application(
            "cg", oracle_static_policy("cg", tiny_config, objective="max"), tiny_config
        )
        equal = run_application("cg", "static-equal", tiny_config)
        assert oracle.total_cycles <= equal.total_cycles * 1.02

    def test_objectives_differ_in_general(self, tiny_config):
        t_total = oracle_static_targets("cg", tiny_config, objective="total")
        t_max = oracle_static_targets("cg", tiny_config, objective="max")
        assert sum(t_total) == sum(t_max) == tiny_config.total_ways
