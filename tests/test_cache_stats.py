"""Tests for cache statistics containers."""

import pytest

from repro.cache.stats import CacheStats, StatsSnapshot


def make_snapshot(**overrides) -> StatsSnapshot:
    base = dict(
        accesses=(10, 20),
        hits=(6, 15),
        misses=(4, 5),
        evictions=(2, 1),
        inter_thread_hits=(1, 3),
        inter_thread_evictions=(1, 0),
        intra_thread_hits=(5, 12),
    )
    base.update(overrides)
    return StatsSnapshot(**base)


class TestCacheStats:
    def test_initial_zero(self):
        s = CacheStats(3)
        assert s.accesses == [0, 0, 0]
        assert s.snapshot().total_accesses == 0

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            CacheStats(0)

    def test_reset(self):
        s = CacheStats(2)
        s.accesses[0] = 5
        s.reset()
        assert s.accesses == [0, 0]

    def test_snapshot_is_immutable_copy(self):
        s = CacheStats(2)
        s.accesses[0] = 5
        snap = s.snapshot()
        s.accesses[0] = 99
        assert snap.accesses == (5, 0)
        with pytest.raises(AttributeError):
            snap.accesses = (1, 1)  # type: ignore[misc]


class TestSnapshot:
    def test_minus(self):
        a = make_snapshot()
        b = make_snapshot(accesses=(4, 8), hits=(2, 6), misses=(2, 2))
        d = a.minus(b)
        assert d.accesses == (6, 12)
        assert d.hits == (4, 9)

    def test_minus_length_mismatch(self):
        a = make_snapshot()
        b = StatsSnapshot(
            accesses=(1,),
            hits=(1,),
            misses=(0,),
            evictions=(0,),
            inter_thread_hits=(0,),
            inter_thread_evictions=(0,),
            intra_thread_hits=(1,),
        )
        with pytest.raises(ValueError):
            a.minus(b)

    def test_totals(self):
        s = make_snapshot()
        assert s.total_accesses == 30
        assert s.total_misses == 9

    def test_miss_rate_per_thread_and_global(self):
        s = make_snapshot()
        assert s.miss_rate(0) == pytest.approx(0.4)
        assert s.miss_rate() == pytest.approx(9 / 30)

    def test_miss_rate_zero_accesses(self):
        s = make_snapshot(accesses=(0, 0), hits=(0, 0), misses=(0, 0))
        assert s.miss_rate() == 0.0
        assert s.miss_rate(0) == 0.0

    def test_inter_thread_fraction(self):
        s = make_snapshot()
        # (1+3) hits + (1+0) evictions over 30 accesses
        assert s.inter_thread_fraction() == pytest.approx(5 / 30)

    def test_constructive_fraction(self):
        s = make_snapshot()
        assert s.constructive_fraction() == pytest.approx(4 / 5)

    def test_constructive_fraction_no_interactions(self):
        s = make_snapshot(inter_thread_hits=(0, 0), inter_thread_evictions=(0, 0))
        assert s.constructive_fraction() == 0.0
