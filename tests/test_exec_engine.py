"""Tests for the execution engines: equivalence, retries, timeouts,
degradation.

The injected job runners must be module-level functions so the pool engine
can pickle them into worker processes.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.cache.stats import StatsSnapshot
from repro.core.records import RunResult
from repro.exec.engine import SerialEngine, execute_job
from repro.exec.jobs import JobSpec
from repro.exec.pool import ProcessPoolEngine
from repro.sim.driver import run_application


def _dummy_result(spec: JobSpec) -> RunResult:
    zeros = (0,)
    snap = StatsSnapshot(zeros, zeros, zeros, zeros, zeros, zeros, zeros)
    return RunResult(
        app=spec.app,
        policy=spec.policy,
        n_threads=1,
        total_cycles=1.0,
        thread_instructions=(1,),
        thread_busy_cycles=(1.0,),
        thread_stall_cycles=(0.0,),
        l2_totals=snap,
    )


def _echo_runner(spec: JobSpec) -> RunResult:
    return _dummy_result(spec)


def _fail_on_art(spec: JobSpec) -> RunResult:
    if spec.app == "art":
        raise ValueError("art always fails")
    return _dummy_result(spec)


def _sleepy_runner(spec: JobSpec) -> RunResult:
    time.sleep(2.0)
    return _dummy_result(spec)


def _die_in_worker(spec: JobSpec) -> RunResult:
    # Kills pool workers outright (simulating OOM/native crash) but runs
    # fine in the parent process, so degradation to serial can succeed.
    if multiprocessing.parent_process() is not None:
        os._exit(1)
    return _dummy_result(spec)


class _FlakyRunner:
    """Fails the first ``n_failures`` calls, then succeeds (serial only)."""

    def __init__(self, n_failures: int) -> None:
        self.n_failures = n_failures
        self.calls = 0

    def __call__(self, spec: JobSpec) -> RunResult:
        self.calls += 1
        if self.calls <= self.n_failures:
            raise RuntimeError(f"flaky failure {self.calls}")
        return _dummy_result(spec)


def specs_for(config, pairs):
    return [JobSpec(app, policy, config) for app, policy in pairs]


class TestSerialEngine:
    def test_runs_real_simulation(self, tiny_config):
        outcome = SerialEngine().run_one(JobSpec("ft", "shared", tiny_config))
        assert outcome.ok
        assert outcome.attempts == 1
        assert outcome.engine == "serial"
        assert outcome.duration_s > 0
        assert outcome.result == run_application("ft", "shared", tiny_config)

    def test_outcomes_preserve_order(self, tiny_config):
        jobs = specs_for(tiny_config, [("cg", "shared"), ("ft", "shared"), ("swim", "shared")])
        outcomes = SerialEngine(job_runner=_echo_runner).run(jobs)
        assert [o.spec.app for o in outcomes] == ["cg", "ft", "swim"]
        assert all(o.ok for o in outcomes)

    def test_retry_until_success(self, tiny_config):
        runner = _FlakyRunner(n_failures=2)
        engine = SerialEngine(max_retries=2, backoff_s=0.0, job_runner=runner)
        outcome = engine.run_one(JobSpec("ft", "shared", tiny_config))
        assert outcome.ok
        assert outcome.attempts == 3
        assert runner.calls == 3

    def test_retries_are_bounded(self, tiny_config):
        runner = _FlakyRunner(n_failures=100)
        engine = SerialEngine(max_retries=1, backoff_s=0.0, job_runner=runner)
        outcome = engine.run_one(JobSpec("ft", "shared", tiny_config))
        assert not outcome.ok
        assert outcome.attempts == 2
        assert "flaky failure" in outcome.error
        assert runner.calls == 2

    def test_one_failure_does_not_poison_the_batch(self, tiny_config):
        jobs = specs_for(tiny_config, [("ft", "shared"), ("art", "shared"), ("cg", "shared")])
        outcomes = SerialEngine(max_retries=0, backoff_s=0.0, job_runner=_fail_on_art).run(jobs)
        assert [o.ok for o in outcomes] == [True, False, True]
        assert "art always fails" in outcomes[1].error

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SerialEngine(max_retries=-1)
        with pytest.raises(ValueError):
            SerialEngine(backoff_s=-0.5)


class TestProcessPoolEngine:
    def test_matches_serial_exactly(self, tiny_config):
        jobs = specs_for(
            tiny_config,
            [("ft", "shared"), ("ft", "model-based"), ("cg", "shared"), ("cg", "static-equal")],
        )
        serial = SerialEngine().run(jobs)
        pool = ProcessPoolEngine(2, chunk_size=2).run(jobs)
        assert all(o.ok for o in pool)
        for s, p in zip(serial, pool, strict=True):
            assert s.result == p.result, f"{s.spec.label}: pool and serial results differ"

    def test_single_job_short_circuits_to_serial(self, tiny_config):
        engine = ProcessPoolEngine(4, job_runner=_echo_runner)
        outcome = engine.run_one(JobSpec("ft", "shared", tiny_config))
        assert outcome.ok
        assert outcome.engine == "process-pool"

    def test_jobs_leq_one_runs_in_process(self, tiny_config):
        engine = ProcessPoolEngine(1, job_runner=_echo_runner)
        outcomes = engine.run(specs_for(tiny_config, [("ft", "shared"), ("cg", "shared")]))
        assert all(o.ok for o in outcomes)

    def test_failing_job_reports_error_others_succeed(self, tiny_config):
        engine = ProcessPoolEngine(2, max_retries=1, backoff_s=0.0, job_runner=_fail_on_art)
        jobs = specs_for(tiny_config, [("ft", "shared"), ("art", "shared"), ("cg", "shared")])
        outcomes = engine.run(jobs)
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[1].attempts == 2
        assert "art always fails" in outcomes[1].error

    def test_per_job_timeout(self, tiny_config):
        engine = ProcessPoolEngine(
            2, timeout_s=0.2, max_retries=0, backoff_s=0.0, job_runner=_sleepy_runner
        )
        jobs = specs_for(tiny_config, [("ft", "shared"), ("cg", "shared")])
        outcomes = engine.run(jobs)
        assert all(not o.ok for o in outcomes)
        assert any("timed out" in o.error for o in outcomes)

    def test_dead_worker_degrades_to_serial(self, tiny_config):
        engine = ProcessPoolEngine(2, max_retries=1, backoff_s=0.0, job_runner=_die_in_worker)
        jobs = specs_for(tiny_config, [("ft", "shared"), ("cg", "shared"), ("swim", "shared")])
        outcomes = engine.run(jobs)
        assert all(o.ok for o in outcomes), [o.error for o in outcomes]
        assert any(o.engine == "process-pool→serial" for o in outcomes)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ProcessPoolEngine(0)
        with pytest.raises(ValueError):
            ProcessPoolEngine(2, chunk_size=0)
        with pytest.raises(ValueError):
            ProcessPoolEngine(2, timeout_s=0)


class TestBackoff:
    """The retry backoff must be jittered, capped per sleep, and bounded
    per batch — a flaky job may not stall a sweep indefinitely."""

    def _capture_sleeps(self, monkeypatch):
        sleeps: list[float] = []
        monkeypatch.setattr(
            "repro.exec.engine.time.sleep", lambda s: sleeps.append(s)
        )
        return sleeps

    def test_backoff_is_jittered_not_lockstep(self, monkeypatch):
        sleeps = self._capture_sleeps(monkeypatch)
        engine = SerialEngine(backoff_s=1.0, backoff_cap_s=100.0, backoff_budget_s=1000.0)
        for _ in range(32):
            engine._backoff_sleep(1)
        # Every delay lands in [0.5, 1.0) x nominal, and they are not all
        # the identical beat.
        assert all(0.5 <= s < 1.0 for s in sleeps)
        assert len(set(sleeps)) > 1

    def test_backoff_doubles_then_caps(self, monkeypatch):
        sleeps = self._capture_sleeps(monkeypatch)
        monkeypatch.setattr("repro.exec.engine.random.random", lambda: 1.0)  # no jitter
        engine = SerialEngine(backoff_s=0.1, backoff_cap_s=0.5, backoff_budget_s=1000.0)
        for round_ in range(1, 7):
            engine._backoff_sleep(round_)
        assert sleeps == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5, 0.5])

    def test_backoff_budget_bounds_a_batch(self, monkeypatch):
        sleeps = self._capture_sleeps(monkeypatch)
        monkeypatch.setattr("repro.exec.engine.random.random", lambda: 1.0)
        engine = SerialEngine(backoff_s=1.0, backoff_cap_s=10.0, backoff_budget_s=2.5)
        total = sum(engine._backoff_sleep(r) for r in range(1, 20))
        assert total == pytest.approx(2.5)
        assert sum(sleeps) == pytest.approx(2.5)
        # Once spent, further retries proceed immediately ...
        assert engine._backoff_sleep(20) == 0.0
        # ... and the next batch refills the budget.
        engine._reset_backoff()
        assert engine._backoff_sleep(1) > 0.0

    def test_run_refills_budget_per_batch(self, monkeypatch, tiny_config):
        self._capture_sleeps(monkeypatch)
        runner = _FlakyRunner(n_failures=2)
        engine = SerialEngine(
            max_retries=2, backoff_s=1.0, backoff_cap_s=1.0, backoff_budget_s=1.5,
            job_runner=runner,
        )
        spec = JobSpec("ft", "shared", tiny_config)
        assert engine.run([spec])[0].ok
        assert engine._backoff_left < engine.backoff_budget_s
        runner.n_failures = 0
        engine.run([spec])
        assert engine._backoff_left == engine.backoff_budget_s

    def test_zero_backoff_never_sleeps(self, monkeypatch):
        sleeps = self._capture_sleeps(monkeypatch)
        engine = SerialEngine(backoff_s=0.0)
        assert engine._backoff_sleep(3) == 0.0
        assert sleeps == []

    def test_invalid_backoff_parameters_rejected(self):
        with pytest.raises(ValueError):
            SerialEngine(backoff_cap_s=-1.0)
        with pytest.raises(ValueError):
            SerialEngine(backoff_budget_s=-1.0)


class TestWarmPool:
    def test_chunk_size_defaults_to_twice_jobs(self):
        assert ProcessPoolEngine(3, job_runner=_echo_runner).chunk_size == 6
        assert ProcessPoolEngine(3, chunk_size=4, job_runner=_echo_runner).chunk_size == 4

    def test_pool_persists_across_runs(self, tiny_config):
        jobs = specs_for(tiny_config, [("ft", "shared"), ("cg", "shared")])
        with ProcessPoolEngine(2, job_runner=_echo_runner) as engine:
            assert engine.run(jobs)  # forks the pool
            first = engine._pool_holder[0]
            assert engine.run(jobs)
            assert engine._pool_holder[0] is first, "warm pool must be reused"
            pids_before = {p.pid for p in first._processes.values()}
            assert engine.run(jobs)
            pids_after = {p.pid for p in engine._pool_holder[0]._processes.values()}
            assert pids_before == pids_after, "workers must survive across run()s"
        assert engine._pool_holder == []

    def test_close_allows_reuse(self, tiny_config):
        jobs = specs_for(tiny_config, [("ft", "shared"), ("cg", "shared")])
        engine = ProcessPoolEngine(2, job_runner=_echo_runner)
        assert all(o.ok for o in engine.run(jobs))
        engine.close()
        assert engine._pool_holder == []
        assert all(o.ok for o in engine.run(jobs)), "a closed engine rebuilds its pool"
        engine.close()

    def test_pool_rebuilds_when_prep_config_changes(self, tmp_path, tiny_config):
        from repro.prep import PrepStore, set_prep_store

        jobs = specs_for(tiny_config, [("ft", "shared"), ("cg", "shared")])
        previous = set_prep_store(None)
        engine = ProcessPoolEngine(2, job_runner=_echo_runner)
        try:
            engine.run(jobs)
            bare_pool = engine._pool_holder[0]
            set_prep_store(PrepStore(tmp_path))
            engine.run(jobs)
            assert engine._pool_holder[0] is not bare_pool, (
                "a prep-store change must re-fork workers with the new initializer"
            )
            rebuilt = engine._pool_holder[0]
            engine.run(jobs)
            assert engine._pool_holder[0] is rebuilt, "same config: pool stays warm"
        finally:
            engine.close()
            set_prep_store(previous)

    def test_abandoned_pool_is_replaced(self, tiny_config):
        engine = ProcessPoolEngine(
            2, timeout_s=0.2, max_retries=0, backoff_s=0.0, job_runner=_sleepy_runner
        )
        try:
            jobs = specs_for(tiny_config, [("ft", "shared"), ("cg", "shared")])
            outcomes = engine.run(jobs)
            assert any(not o.ok for o in outcomes)
            assert engine._pool_holder == [], "a wedged pool must not be rejoined"
        finally:
            engine.close()


class TestExecuteJob:
    def test_default_runner_simulates(self, tiny_config):
        result = execute_job(JobSpec("ft", "shared", tiny_config))
        assert result == run_application("ft", "shared", tiny_config)


class TestEngineStoreIntegration:
    def test_pool_results_roundtrip_through_store(self, tmp_path, tiny_config):
        from repro.exec.store import ResultStore

        store = ResultStore(tmp_path)
        spec = JobSpec("ft", "model-based", tiny_config)
        outcome = ProcessPoolEngine(2, job_runner=_echo_runner).run_one(spec)
        store.put(spec, outcome.result)
        assert store.get(spec) == outcome.result
