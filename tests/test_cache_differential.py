"""Differential equivalence: the fast L2 backend is a behavioural twin.

``FastPartitionedSharedCache`` (struct-of-arrays layout plus the fused
replay kernel) exists purely for speed; this suite is the contract that
it is *byte-identical* to the readable reference implementation:

* every :class:`~repro.core.records.RunResult` field — clocks, busy/stall
  cycles, instruction counts, per-thread cache statistics, interval
  records — serialises to the same JSON across apps x policies x seeds
  x L2 geometries,
* the telemetry event stream (interval / repartition / convergence) is
  identical event-for-event,
* the standalone ``access()`` surface produces the same hit/miss stream,
  statistics and occupancy under randomised traffic and live
  repartitioning, with structural invariants intact throughout.

Anything the fast path gets wrong shows up here as a field-level diff,
not as a silently different experiment result.
"""

from __future__ import annotations

import dataclasses
import json
import random

import pytest

from repro import SystemConfig
from repro.cache import CacheGeometry, FastPartitionedSharedCache, PartitionedSharedCache
from repro.obs.tracer import RecordingTracer
from repro.partition import POLICY_REGISTRY
from repro.sim.driver import run_application, run_batch

APPS = ("swim", "art", "equake", "mgrid")
SEEDS = (1, 7)
GEOMETRIES = (CacheGeometry(sets=32, ways=16), CacheGeometry(sets=16, ways=8))


def _quick_config(geometry: CacheGeometry, seed: int, backend: str) -> SystemConfig:
    return SystemConfig.quick().with_(
        l2_geometry=geometry, seed=seed, cache_backend=backend
    )


def _result_json(app: str, policy: str, config: SystemConfig) -> str:
    return json.dumps(run_application(app, policy, config).to_dict(), sort_keys=True)


def _diff_fields(ref: dict, fast: dict, path: str = "") -> list[str]:
    """Paths where two result dicts disagree (value or type)."""
    if type(ref) is not type(fast):
        return [f"{path}: type {type(ref).__name__} != {type(fast).__name__}"]
    if isinstance(ref, dict):
        out = []
        for key in sorted(set(ref) | set(fast)):
            if key not in ref or key not in fast:
                out.append(f"{path}.{key}: missing on one side")
            else:
                out.extend(_diff_fields(ref[key], fast[key], f"{path}.{key}"))
        return out
    if isinstance(ref, list):
        if len(ref) != len(fast):
            return [f"{path}: length {len(ref)} != {len(fast)}"]
        out = []
        for i, (a, b) in enumerate(zip(ref, fast)):
            out.extend(_diff_fields(a, b, f"{path}[{i}]"))
        return out
    if ref != fast:
        return [f"{path}: {ref!r} != {fast!r}"]
    return []


@pytest.mark.parametrize("geometry", GEOMETRIES, ids=("l2-32x16", "l2-16x8"))
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("policy", sorted(POLICY_REGISTRY))
@pytest.mark.parametrize("app", APPS)
def test_run_results_byte_identical(app, policy, seed, geometry):
    """Full matrix: RunResult.to_dict() must serialise identically."""
    ref = run_application(app, policy, _quick_config(geometry, seed, "reference"))
    fast = run_application(app, policy, _quick_config(geometry, seed, "fast"))
    ref_d, fast_d = ref.to_dict(), fast.to_dict()
    if json.dumps(ref_d, sort_keys=True) != json.dumps(fast_d, sort_keys=True):
        diffs = _diff_fields(ref_d, fast_d)
        pytest.fail(
            f"backends diverge for {app}/{policy} seed={seed} {geometry}:\n  "
            + "\n  ".join(diffs[:20])
        )


@pytest.mark.parametrize("policy", ("model-based", "shared"))
def test_run_results_byte_identical_eight_core(policy):
    """The 8-thread kernel specialisations replay identically too."""
    base = SystemConfig.quick(n_threads=8)
    ref = run_application("art", policy, base.with_(cache_backend="reference"))
    fast = run_application("art", policy, base.with_(cache_backend="fast"))
    assert json.dumps(ref.to_dict(), sort_keys=True) == json.dumps(
        fast.to_dict(), sort_keys=True
    )


@pytest.mark.parametrize("geometry", GEOMETRIES, ids=("l2-32x16", "l2-16x8"))
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("app", APPS)
def test_batched_run_results_byte_identical(app, seed, geometry):
    """Full matrix for the batch backend: every lane of an all-policies
    batch serialises identically to the reference run of that cell."""
    policies = sorted(POLICY_REGISTRY)
    config = _quick_config(geometry, seed, "batch")
    results = run_batch(app, [(policy, config) for policy in policies])
    for policy, result in zip(policies, results):
        ref = run_application(app, policy, _quick_config(geometry, seed, "reference"))
        ref_d, lane_d = ref.to_dict(), result.to_dict()
        if json.dumps(ref_d, sort_keys=True) != json.dumps(lane_d, sort_keys=True):
            diffs = _diff_fields(ref_d, lane_d)
            pytest.fail(
                f"batch lane diverges for {app}/{policy} seed={seed} {geometry}:\n  "
                + "\n  ".join(diffs[:20])
            )


@pytest.mark.parametrize("policies", (("model-based", "shared"), ("fairness", "cpi-proportional")))
def test_batched_run_results_byte_identical_eight_core(policies):
    """8-thread lanes replay identically batched too."""
    base = SystemConfig.quick(n_threads=8)
    results = run_batch(
        "art", [(policy, base.with_(cache_backend="batch")) for policy in policies]
    )
    for policy, result in zip(policies, results):
        ref = run_application("art", policy, base.with_(cache_backend="reference"))
        assert json.dumps(ref.to_dict(), sort_keys=True) == json.dumps(
            result.to_dict(), sort_keys=True
        ), f"batched 8-core lane diverges for art/{policy}"


def test_batched_lanes_may_differ_in_l2_geometry():
    """The lane axis spans L2 geometries sharing one prepared program."""
    cells = [
        ("model-based", _quick_config(geometry, 1, "batch"))
        for geometry in GEOMETRIES
    ]
    results = run_batch("swim", cells)
    for (policy, config), result in zip(cells, results):
        ref = run_application(
            "swim", policy, config.with_(cache_backend="reference")
        )
        assert json.dumps(ref.to_dict(), sort_keys=True) == json.dumps(
            result.to_dict(), sort_keys=True
        )


def test_batched_telemetry_stream_matches_reference():
    """A traced batch narrates each lane exactly like a solo reference
    run, in lane order (spans differ: one prepare/simulate per batch)."""
    policies = ("model-based", "shared")
    tracer = RecordingTracer()
    run_batch(
        "swim",
        [(policy, _quick_config(GEOMETRIES[0], 1, "batch")) for policy in policies],
        tracer=tracer,
    )
    batched = [(e.kind, e.to_dict()) for e in tracer.events if e.kind != "span"]
    expected = []
    for policy in policies:
        solo = RecordingTracer()
        run_application(
            "swim", policy, _quick_config(GEOMETRIES[0], 1, "reference"), tracer=solo
        )
        expected.extend(
            (e.kind, e.to_dict()) for e in solo.events if e.kind != "span"
        )
    assert batched == expected


@pytest.mark.parametrize("policy", ("model-based", "throughput", "shared"))
def test_telemetry_streams_identical(policy):
    """Interval/repartition/convergence events match one-for-one.

    Span events carry wall-clock durations, so only their names are
    compared; every simulation-derived event must agree payload-for-
    payload, in order.
    """
    streams = {}
    for backend in ("reference", "fast"):
        tracer = RecordingTracer()
        run_application("swim", policy, _quick_config(GEOMETRIES[0], 1, backend), tracer=tracer)
        streams[backend] = [
            (e.kind, e.to_dict()) for e in tracer.events if e.kind != "span"
        ]
        streams[backend + "-spans"] = [
            e.to_dict()["name"] for e in tracer.events if e.kind == "span"
        ]
    assert streams["reference"] == streams["fast"]
    assert streams["reference-spans"] == streams["fast-spans"]


def _random_stream(seed: int, n_threads: int, length: int) -> list[tuple[int, int]]:
    rng = random.Random(seed)
    # Mixed locality: small hot region, larger warm region, cold tail.
    regions = ((1 << 12, 0.6), (1 << 16, 0.3), (1 << 22, 0.1))
    out = []
    for _ in range(length):
        thread = rng.randrange(n_threads)
        roll, base = rng.random(), 0.0
        for span, weight in regions:
            base += weight
            if roll < base:
                out.append((thread, rng.randrange(span)))
                break
        else:
            out.append((thread, rng.randrange(regions[-1][0])))
    return out


def _random_targets(rng: random.Random, n_threads: int, ways: int) -> list[int]:
    cuts = sorted(rng.randrange(ways + 1) for _ in range(n_threads - 1))
    return [b - a for a, b in zip([0, *cuts], [*cuts, ways])]


@pytest.mark.parametrize("enforce", (True, False), ids=("partitioned", "plain-lru"))
@pytest.mark.parametrize("seed", SEEDS)
def test_access_stream_differential(enforce, seed):
    """Standalone access() surface: same hits, stats and occupancy under
    randomised traffic with repartitioning every 512 accesses."""
    geometry = CacheGeometry(sets=16, ways=8)
    n_threads = 4
    ref = PartitionedSharedCache(geometry, n_threads, enforce_partition=enforce)
    fast = FastPartitionedSharedCache(geometry, n_threads, enforce_partition=enforce)
    rng = random.Random(seed + 100)
    for i, (thread, addr) in enumerate(_random_stream(seed, n_threads, 6000)):
        if enforce and i % 512 == 0 and i:
            targets = _random_targets(rng, n_threads, geometry.ways)
            ref.set_targets(targets)
            fast.set_targets(targets)
        assert ref.access(thread, addr) == fast.access(thread, addr), (
            f"hit/miss divergence at access {i} (thread={thread}, addr={addr:#x})"
        )
        if i % 1000 == 0:
            assert ref.occupancy() == fast.occupancy()
            fast.check_invariants()
    assert ref.stats.snapshot() == fast.stats.snapshot()
    assert ref.occupancy() == fast.occupancy()
    for s in range(geometry.sets):
        assert ref.set_occupancy(s) == fast.set_occupancy(s)
    assert ref.partition_distance() == fast.partition_distance()
    ref.check_invariants()
    fast.check_invariants()


def test_backend_field_rejects_unknown():
    with pytest.raises(ValueError, match="cache_backend"):
        dataclasses.replace(SystemConfig.quick(), cache_backend="turbo")
