"""SweepService behavior: coalescing, admission, streaming, drain/resume.

Driven with ``asyncio.run`` directly (no pytest-asyncio in the image);
each test builds a service on a tmp data dir, runs one scenario inside a
coroutine, and always drains before the loop closes so no engine thread
or journal handle outlives the test.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.exec.engine import SerialEngine
from repro.exec.store import ResultStore
from repro.exec.sweep import run_sweep
from repro.obs import METRICS, RecordingTracer, set_tracer
from repro.serve.admission import AdmissionController
from repro.serve.protocol import SweepRequest
from repro.serve.service import SweepService

TINY = {
    "apps": ["ft"],
    "policies": ["shared", "static-equal"],
    "intervals": 3,
    "interval_instructions": 2000,
}
# Slow enough to still be running when a test drains mid-sweep.
SLOW = {**TINY, "intervals": 30, "interval_instructions": 8000}


def _service(tmp_path, **kwargs) -> SweepService:
    kwargs.setdefault("engine", SerialEngine())
    kwargs.setdefault("store", ResultStore(tmp_path / "store"))
    return SweepService(data_dir=tmp_path / "data", **kwargs)


async def _finish(service: SweepService, sweep_id: str):
    task = service.get(sweep_id)
    if task.task is not None:  # fully-warm sweeps finalize at submit time
        await task.task
    return task


def _reference_aggregates(payload: dict) -> str:
    """Canonical JSON of what a cold `repro sweep` of the grid produces."""
    req = SweepRequest.from_dict(payload)
    result = run_sweep(
        list(req.apps), list(req.policies),
        seeds=list(req.seeds), thread_counts=list(req.thread_counts),
        config=req.config(), engine=SerialEngine(), store=None,
        baseline=payload.get("baseline"),
    )
    return json.dumps(result.aggregates(), sort_keys=True)


class TestSubmission:
    def test_submit_runs_to_done_with_byte_identical_aggregates(self, tmp_path):
        async def main():
            service = _service(tmp_path)
            service.start()
            status, body = service.submit(TINY)
            assert status == 202 and body["attached"] is False
            task = await _finish(service, body["sweep_id"])
            assert task.status == "done"
            await service.drain()
            return json.dumps(task.result.aggregates(), sort_keys=True)

        served = asyncio.run(main())
        METRICS.reset()  # isolate the reference sweep's counters
        assert served == _reference_aggregates(TINY)

    def test_invalid_request_is_400_not_an_exception(self, tmp_path):
        async def main():
            service = _service(tmp_path)
            service.start()
            status, body = service.submit({"apps": ["nope"], "policies": ["shared"]})
            assert status == 400 and "unknown workloads" in body["error"]
            status, body = service.submit("not a dict")
            assert status == 400
            await service.drain()

        asyncio.run(main())

    def test_identical_grids_attach_and_execute_once(self, tmp_path):
        """Satellite: two clients, same grid -> one engine execution per
        cell, byte-identical results for both."""
        async def main():
            service = _service(tmp_path)
            service.start()
            s1, b1 = service.submit({**TINY, "client": "alice"})
            s2, b2 = service.submit({**TINY, "client": "bob"})
            assert (s1, s2) == (202, 200)
            assert b2["attached"] is True
            assert b1["sweep_id"] == b2["sweep_id"]
            task = await _finish(service, b1["sweep_id"])
            assert task.clients == {"alice", "bob"}
            counters = METRICS.snapshot()["counters"]
            # Exactly one engine execution per distinct cell.
            assert counters["exec.jobs_ok"] == task.total == 2
            assert counters["serve.cells.executed"] == 2
            assert counters["serve.sweeps.attached"] == 1
            assert counters.get("serve.cells.coalesced", 0) == 0
            await service.drain()
            return json.dumps(task.result.aggregates(), sort_keys=True)

        served = asyncio.run(main())
        METRICS.reset()
        assert served == _reference_aggregates(TINY)

    def test_overlapping_grids_coalesce_shared_cells(self, tmp_path):
        """Different grids sharing cells: the shared cells execute once
        (per-cell coalescing), the unique remainder executes normally."""
        wide = {**TINY, "policies": ["shared", "static-equal", "throughput"]}

        async def main():
            service = _service(tmp_path)
            service.start()
            _, b1 = service.submit({**TINY, "client": "alice"})
            _, b2 = service.submit({**wide, "client": "bob"})
            assert b1["sweep_id"] != b2["sweep_id"]
            t1 = await _finish(service, b1["sweep_id"])
            t2 = await _finish(service, b2["sweep_id"])
            assert t1.status == t2.status == "done"
            counters = METRICS.snapshot()["counters"]
            # 2 cells in grid 1; grid 2 shares both and adds 1: the
            # engine must have run each distinct cell exactly once.
            assert counters["exec.jobs_ok"] == 3
            assert t2.coalesced + t2.store_hits == 2  # shared cells never re-ran
            await service.drain()

        asyncio.run(main())

    def test_warm_store_resolves_cells_without_scheduling(self, tmp_path):
        async def main():
            service = _service(tmp_path)
            service.start()
            _, b1 = service.submit(TINY)
            await _finish(service, b1["sweep_id"])
            # Evict the retained sweep so the resubmission cannot attach.
            service._sweeps.clear()
            _, b2 = service.submit({**TINY, "resume": False})
            task = await _finish(service, b2["sweep_id"])
            assert task.store_hits == task.total == 2
            assert task.scheduled == 0 and task.executed == 0
            assert [c.source for c in task.result.cells] == ["store", "store"]
            await service.drain()

        asyncio.run(main())


class TestAdmission:
    def test_backlog_bound_rejects_with_retry_after(self, tmp_path):
        async def main():
            admission = AdmissionController(max_pending_cells=1)
            service = _service(tmp_path, admission=admission)
            service.start()
            status, body = service.submit(TINY)  # 2 cells > bound of 1
            assert status == 429
            assert body["reason"] == "backlog"
            assert body["retry_after_s"] >= 0.1
            assert METRICS.snapshot()["counters"]["serve.rejected.backlog"] == 1
            await service.drain()

        asyncio.run(main())

    def test_per_client_quota(self, tmp_path):
        other = {**SLOW, "seeds": [2]}

        async def main():
            admission = AdmissionController(max_sweeps_per_client=1)
            service = _service(tmp_path, admission=admission, batch_size=1)
            service.start()
            s1, b1 = service.submit({**SLOW, "client": "alice"})
            assert s1 == 202
            s2, body = service.submit({**other, "client": "alice"})
            assert s2 == 429 and body["reason"] == "client_quota"
            s3, _ = service.submit({**other, "client": "bob"})
            assert s3 == 202  # quota is per client, not global
            await _finish(service, b1["sweep_id"])
            await service.drain()

        asyncio.run(main())

    def test_draining_service_rejects_with_503(self, tmp_path):
        async def main():
            service = _service(tmp_path)
            service.start()
            await service.drain()
            status, body = service.submit(TINY)
            assert status == 503 and "draining" in body["error"]

        asyncio.run(main())


class TestStreaming:
    def test_stream_replays_history_then_ends_on_terminal_status(self, tmp_path):
        async def main():
            service = _service(tmp_path)
            service.start()
            _, body = service.submit(TINY)
            task = service.get(body["sweep_id"])
            events = [event async for event in task.stream()]
            assert events[0]["event"] == "status"
            cells = [e for e in events if e["event"] == "cell"]
            assert len(cells) == 2
            assert [c["completed"] for c in cells] == [1, 2]
            assert events[-1]["event"] == "status" and events[-1]["status"] == "done"
            # A late stream of the finished sweep replays everything.
            replay = [event async for event in task.stream()]
            assert [e for e in replay if e["event"] == "cell"] == cells
            await service.drain()

        asyncio.run(main())

    def test_concurrent_streams_see_the_same_events(self, tmp_path):
        async def main():
            service = _service(tmp_path)
            service.start()
            _, body = service.submit(TINY)
            task = service.get(body["sweep_id"])

            async def collect():
                return [e async for e in task.stream()]

            a, b = await asyncio.gather(collect(), collect())
            assert [e for e in a if e["event"] == "cell"] == [
                e for e in b if e["event"] == "cell"
            ]
            await service.drain()

        asyncio.run(main())


class TestDrainAndResume:
    def test_drain_mid_sweep_interrupts_and_journal_resumes(self, tmp_path):
        """Kill/attach/resume across service incarnations: the resumed
        sweep's aggregates are byte-identical to an uninterrupted one."""
        many = {**SLOW, "seeds": [1, 2, 3]}  # 6 cells

        async def phase1():
            service = _service(tmp_path, batch_size=1)
            service.start()
            _, body = service.submit(many)
            task = service.get(body["sweep_id"])
            # Wait for the first cell to complete, then drain under load.
            while not any(e["event"] == "cell" for e in task.events):
                await asyncio.sleep(0.01)
            await service.drain("SIGTERM")
            await task.task
            assert task.status == "interrupted"
            assert 0 < len(task.cells) < task.total
            journal = service.journal_path(body["sweep_id"])
            assert journal.is_file()
            # Crash-safety invariant: every record newline-terminated.
            assert journal.read_bytes().endswith(b"\n")
            return body["sweep_id"], len(task.cells)

        sweep_id, completed = asyncio.run(phase1())

        async def phase2():
            service = _service(tmp_path)  # same data dir: new incarnation
            service.start()
            status, body = service.submit(many)
            assert status == 202
            assert body["resumed"] == completed
            task = await _finish(service, sweep_id)
            assert task.status == "done"
            # Restored cells keep their original source verbatim.
            assert sum(1 for c in task.result.cells if c.source == "run") == task.total
            await service.drain()
            return json.dumps(task.result.aggregates(), sort_keys=True)

        resumed = asyncio.run(phase2())
        METRICS.reset()
        assert resumed == _reference_aggregates(many)

    def test_no_resume_starts_fresh_despite_journal(self, tmp_path):
        many = {**SLOW, "seeds": [1, 2, 3]}  # enough cells to catch mid-queue

        async def main():
            service = _service(tmp_path, batch_size=1)
            service.start()
            _, body = service.submit(many)
            task = service.get(body["sweep_id"])
            while not any(e["event"] == "cell" for e in task.events):
                await asyncio.sleep(0.01)
            await service.drain()
            await task.task
            assert task.status == "interrupted"
            return body["sweep_id"]

        sweep_id = asyncio.run(main())

        async def fresh():
            service = _service(tmp_path)
            service.start()
            _, body = service.submit({**many, "resume": False})
            assert body["resumed"] == 0
            task = await _finish(service, sweep_id)
            assert task.status == "done"
            await service.drain()

        asyncio.run(fresh())

    def test_archived_status_and_events_from_journal(self, tmp_path):
        async def main():
            service = _service(tmp_path)
            service.start()
            _, body = service.submit(TINY)
            await _finish(service, body["sweep_id"])
            await service.drain()
            return body["sweep_id"]

        sweep_id = asyncio.run(main())

        async def later():
            service = _service(tmp_path)
            service.start()
            # Not in memory (new incarnation), but the journal remains.
            assert service.get(sweep_id) is None
            status = service.archived_status(sweep_id)
            assert status["status"] == "archived"
            assert status["completed"] == 2
            events = service.archived_events(sweep_id)
            cells = [e for e in events if e["event"] == "cell"]
            assert len(cells) == 2 and all(e["replayed"] for e in cells)
            assert service.archived_status("0" * 64) is None
            await service.drain()

        asyncio.run(later())


class TestObservability:
    def test_submissions_emit_trace_events(self, tmp_path):
        tracer = RecordingTracer()
        set_tracer(tracer)
        try:
            async def main():
                admission = AdmissionController(max_pending_cells=1)
                service = _service(tmp_path, admission=admission)
                service.start()
                status, _ = service.submit(TINY)
                assert status == 429
                await service.drain("SIGTERM")

            asyncio.run(main())
        finally:
            set_tracer(None)
        kinds = [r["kind"] for r in tracer.records]
        assert "sweep_rejected" in kinds
        assert "serve_drain" in kinds
        rejected = next(r for r in tracer.records if r["kind"] == "sweep_rejected")
        assert rejected["reason"] == "backlog"

    def test_stats_shape(self, tmp_path):
        async def main():
            service = _service(tmp_path)
            service.start()
            _, body = service.submit(TINY)
            await _finish(service, body["sweep_id"])
            stats = service.stats()
            assert stats["engine"] == "serial"
            assert stats["retained_sweeps"] == 1
            assert stats["counters"]["serve.cells.executed"] == 2
            assert stats["store"]["writes"] == 2
            await service.drain()

        asyncio.run(main())


class TestRetention:
    def test_finished_sweeps_evicted_beyond_retain(self, tmp_path):
        async def main():
            service = _service(tmp_path, retain=1)
            service.start()
            grids = [{**TINY, "seeds": [s]} for s in (1, 2, 3)]
            ids = []
            for grid in grids:
                _, body = service.submit(grid)
                await _finish(service, body["sweep_id"])
                ids.append(body["sweep_id"])
            assert service.get(ids[-1]) is not None  # newest retained
            assert service.get(ids[0]) is None  # oldest evicted...
            assert service.archived_status(ids[0]) is not None  # ...but replayable
            await service.drain()

        asyncio.run(main())


class TestPoolEngine:
    def test_pool_engine_aggregates_byte_identical(self, tmp_path):
        from repro.exec.pool import ProcessPoolEngine

        grid = {**TINY, "seeds": [1, 2]}  # 4 cells over 2 workers

        async def main():
            service = _service(tmp_path, engine=ProcessPoolEngine(2))
            service.start()
            _, body = service.submit(grid)
            task = await _finish(service, body["sweep_id"])
            assert task.status == "done"
            await service.drain()  # also closes the pool
            return json.dumps(task.result.aggregates(), sort_keys=True)

        served = asyncio.run(main())
        METRICS.reset()
        assert served == _reference_aggregates(grid)
