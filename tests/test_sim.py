"""Tests for the configuration and top-level driver."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.partition import POLICY_REGISTRY
from repro.partition.static import StaticPolicy
from repro.sim.config import SystemConfig
from repro.sim.driver import clear_program_cache, make_policy, prepare_program, run_application


class TestSystemConfig:
    def test_defaults(self):
        cfg = SystemConfig.default()
        assert cfg.n_threads == 4
        assert cfg.total_ways == 32
        assert cfg.l1_geometry.size_bytes == 8 * 1024

    def test_eight_core(self):
        assert SystemConfig.eight_core().n_threads == 8

    def test_quick_is_smaller(self):
        q = SystemConfig.quick()
        d = SystemConfig.default()
        assert q.n_intervals < d.n_intervals
        assert q.interval_instructions < d.interval_instructions

    def test_with_updates(self):
        cfg = SystemConfig.default().with_(seed=99)
        assert cfg.seed == 99
        assert cfg.n_threads == 4

    def test_too_few_ways_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(n_threads=8, l2_geometry=CacheGeometry(sets=4, ways=4))

    def test_line_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(
                l1_geometry=CacheGeometry(sets=32, ways=4, line_bytes=32),
                l2_geometry=CacheGeometry(sets=32, ways=32, line_bytes=64),
            )

    def test_describe_covers_figure2_fields(self):
        desc = SystemConfig.default().describe()
        assert desc["L2 cache type"] == "Shared"
        assert desc["L1 cache size"] == "8 KB"
        assert "L2 cache associativity" in desc

    def test_hashable_for_memoisation(self):
        assert hash(SystemConfig.default()) == hash(SystemConfig.default())


class TestDriver:
    def test_prepare_program_memoised(self, tiny_config):
        clear_program_cache()
        c1 = prepare_program("ft", tiny_config)
        c2 = prepare_program("ft", tiny_config)
        assert c1 is c2
        clear_program_cache()
        c3 = prepare_program("ft", tiny_config)
        assert c3 is not c1

    def test_different_seed_different_program(self, tiny_config):
        c1 = prepare_program("ft", tiny_config)
        c2 = prepare_program("ft", tiny_config.with_(seed=1234))
        assert c1 is not c2

    def test_make_policy_from_registry(self, tiny_config):
        for name in POLICY_REGISTRY:
            p = make_policy(name, tiny_config)
            assert p.name == name

    def test_make_policy_passthrough(self, tiny_config):
        p = StaticPolicy(4, 8, [5, 1, 1, 1])
        assert make_policy(p, tiny_config) is p

    def test_make_policy_unknown(self, tiny_config):
        with pytest.raises(KeyError):
            make_policy("nope", tiny_config)

    def test_run_application_end_to_end(self, tiny_config):
        r = run_application("ft", "shared", tiny_config)
        assert r.app == "ft"
        assert r.policy == "shared"
        assert r.total_cycles > 0
        assert len(r.intervals) >= tiny_config.n_intervals - 1
        assert r.total_instructions > 0

    def test_run_is_deterministic(self, tiny_config):
        r1 = run_application("cg", "model-based", tiny_config)
        r2 = run_application("cg", "model-based", tiny_config)
        assert r1.total_cycles == r2.total_cycles
        assert r1.thread_instructions == r2.thread_instructions

    def test_policies_share_identical_traces(self, tiny_config):
        r1 = run_application("cg", "shared", tiny_config)
        r2 = run_application("cg", "static-equal", tiny_config)
        assert r1.thread_instructions == r2.thread_instructions
        assert r1.thread_l1_accesses == r2.thread_l1_accesses

    def test_workload_profile_object_accepted(self, tiny_config):
        from repro.trace.workloads import get_workload

        r = run_application(get_workload("ft"), "shared", tiny_config)
        assert r.app == "ft"
