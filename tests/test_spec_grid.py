"""The grid-construction refactor's contract: one pure builder everywhere.

:class:`repro.exec.grid.SweepGrid` is the single place a sweep grid is
defaulted, validated and compiled; the CLI, the serve protocol and the
spec schema all flow through it.  Pinned here:

* **purity** (hypothesis) — the same grid fields always compile to the
  same :attr:`JobSpec.digest` list, *order included*, across rebuilds;
* **cross-entry-point identity** — a grid built from a spec document and
  the identical grid submitted to the serve layer produce the same
  sweep id, cell digests and cell order;
* **golden fixture** — the full compilation of ``specs/smoke.json``
  (grid digest + per-cell digests in order) is frozen in
  ``tests/golden/``; regenerate with ``REPRO_REGEN_GOLDEN=1`` and review
  the diff (a change means every store key and journal id moves).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.exec.grid import GridError, SweepGrid
from repro.serve.protocol import SweepRequest
from repro.spec import load_spec, parse_spec

GOLDEN_DIR = Path(__file__).parent / "golden"
REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"
SPECS_DIR = Path(__file__).parent.parent / "specs"

_apps = st.lists(
    st.sampled_from(["ft", "cg", "swim", "art", "mg"]), min_size=1, max_size=3, unique=True
)
_policies = st.lists(
    st.sampled_from(["shared", "static-equal", "throughput", "model-based"]),
    min_size=1, max_size=3, unique=True,
)
_grid_fields = st.fixed_dictionaries(
    {
        "apps": _apps,
        "policies": _policies,
        "seeds": st.lists(st.integers(0, 99), min_size=1, max_size=3, unique=True),
        "thread_counts": st.lists(st.sampled_from([2, 4, 8]), min_size=1, max_size=2,
                                  unique=True),
        "intervals": st.integers(1, 60),
        "interval_instructions": st.integers(1000, 30_000),
    }
)


class TestPurity:
    @given(fields=_grid_fields)
    @settings(max_examples=60, deadline=None)
    def test_same_fields_compile_to_same_digests_in_order(self, fields):
        first = SweepGrid.build(**fields)
        second = SweepGrid.build(**fields)
        assert first == second
        assert first.digest == second.digest
        assert [s.digest for s in first.specs()] == [s.digest for s in second.specs()]

    @given(fields=_grid_fields)
    @settings(max_examples=60, deadline=None)
    def test_canonical_order_is_apps_policies_seeds_threads(self, fields):
        grid = SweepGrid.build(**fields)
        specs = grid.specs()
        assert len(specs) == grid.n_cells
        expected = [
            (app, policy, seed, threads)
            for app in grid.apps
            for policy in grid.policies
            for seed in grid.seeds
            for threads in grid.thread_counts
        ]
        actual = [(s.app, s.policy, s.config.seed, s.config.n_threads) for s in specs]
        assert actual == expected

    @given(fields=_grid_fields)
    @settings(max_examples=40, deadline=None)
    def test_digest_is_a_function_of_the_fields_only(self, fields):
        grid = SweepGrid.build(**fields)
        rebuilt = SweepGrid.build(**json.loads(json.dumps(fields)))
        assert rebuilt.grid_key() == grid.grid_key()
        assert rebuilt.digest == grid.digest


class TestCrossEntryPointIdentity:
    def test_spec_grid_equals_serve_request(self):
        doc = {
            "spec_version": 1,
            "grid": {"apps": ["ft", "cg"], "policies": ["shared", "model-based"],
                     "seeds": [1, 2], "thread_counts": [4]},
            "config": {"intervals": 7, "interval_instructions": 4000},
        }
        grid = parse_spec(doc).grid
        request = SweepRequest.from_dict({
            "apps": ["ft", "cg"], "policies": ["shared", "model-based"],
            "seeds": [1, 2], "thread_counts": [4],
            "intervals": 7, "interval_instructions": 4000,
        })
        assert request.sweep_id == grid.digest
        assert request.grid_key() == grid.grid_key()
        assert [s.digest for s in request.specs()] == [s.digest for s in grid.specs()]

    def test_grid_key_includes_the_simulator_version(self):
        grid = SweepGrid.build(apps=["ft"], policies=["shared"])
        assert grid.grid_key()["version"] == repro.__version__

    def test_to_dict_build_round_trip_preserves_identity(self):
        grid = SweepGrid.build(apps=["ft"], policies=["model", "shared"], seeds=[3])
        again = SweepGrid.build(**grid.to_dict())
        assert again == grid and again.digest == grid.digest


class TestValidation:
    def test_error_carries_the_field_path(self):
        with pytest.raises(GridError) as excinfo:
            SweepGrid.build(apps=["ft"], policies=["shared"], seeds=[1, "x"],
                            path="anything.grid")
        assert excinfo.value.path == "anything.grid.seeds[1]"
        assert str(excinfo.value).startswith("anything.grid.seeds[1]: ")

    def test_bool_is_not_an_int(self):
        with pytest.raises(GridError, match=r"thread_counts\[0\]"):
            SweepGrid.build(apps=["ft"], policies=["shared"], thread_counts=[True])

    def test_direct_constructor_skips_validation(self):
        # Documented escape hatch for already-validated callers.
        grid = SweepGrid(apps=("zz",), policies=("nope",))
        assert grid.apps == ("zz",)


class TestGoldenCompiledSpec:
    """The full compilation of the checked-in smoke spec, frozen."""

    def _compile(self) -> dict:
        spec = load_spec(SPECS_DIR / "smoke.json")
        grid = spec.grid
        return {
            "source": "specs/smoke.json",
            "version": repro.__version__,
            "grid": grid.to_dict(),
            "grid_digest": grid.digest,
            "cells": [
                {"app": s.app, "policy": s.policy, "seed": s.config.seed,
                 "n_threads": s.config.n_threads, "digest": s.digest,
                 "store_key": f"v{repro.__version__}/{s.digest[:2]}/{s.digest}.json"}
                for s in grid.specs()
            ],
        }

    def test_compiled_smoke_spec_matches_golden(self):
        compiled = self._compile()
        fixture = GOLDEN_DIR / "compiled_spec__smoke.json"
        if REGEN:
            fixture.write_text(json.dumps(compiled, indent=2, sort_keys=True) + "\n")
            pytest.skip("golden fixture regenerated")
        assert fixture.is_file(), (
            "golden fixture missing; regenerate with REPRO_REGEN_GOLDEN=1"
        )
        golden = json.loads(fixture.read_text())
        assert compiled == golden

    def test_golden_store_keys_match_the_result_store(self, tmp_path):
        from repro.exec.store import ResultStore

        spec = load_spec(SPECS_DIR / "smoke.json")
        store = ResultStore(tmp_path)
        compiled = self._compile()
        for cell, job in zip(compiled["cells"], spec.grid.specs()):
            assert store.key_for(job) == cell["store_key"]
