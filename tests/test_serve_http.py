"""End-to-end HTTP tests: real sockets, the threaded server, the client.

Each test boots the full stack (``start_in_thread`` -> asyncio loop ->
``repro.serve.http`` -> :class:`SweepService`) on an OS-assigned port
and talks to it with :class:`ServeClient` — the same path ``repro
submit`` takes — plus raw ``http.client`` for the protocol-edge cases a
well-behaved client never sends.
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.serve.client import Backpressure, ServeClient, ServeError
from repro.serve.runner import ServeSettings, start_in_thread

TINY = {
    "apps": ["ft"],
    "policies": ["shared", "static-equal"],
    "intervals": 3,
    "interval_instructions": 2000,
}


@pytest.fixture
def server(tmp_path):
    settings = ServeSettings(port=0, data_dir=tmp_path / "data", jobs=1)
    handle = start_in_thread(settings)
    try:
        yield handle
    finally:
        handle.stop()


@pytest.fixture
def client(server):
    return ServeClient(port=server.port, timeout=60.0)


class TestRoutes:
    def test_healthz(self, client):
        assert client.healthz() == {"status": "ok"}

    def test_submit_wait_and_result(self, client):
        final = client.run(TINY)
        assert final["status"] == "done"
        assert final["completed"] == final["total_cells"] == 2
        assert final["result"]["n_failures"] == 0
        assert "static-equal" in final["result"]["mean_speedups"]

    def test_status_of_unknown_sweep_is_404(self, client):
        with pytest.raises(ServeError) as exc:
            client.status("0" * 64)
        assert exc.value.status == 404

    def test_events_stream_ndjson(self, client):
        submission = client.submit(TINY)
        events = list(client.events(submission["sweep_id"]))
        assert events[0]["event"] == "status"
        cells = [e for e in events if e["event"] == "cell"]
        assert len(cells) == 2
        assert events[-1]["status"] == "done"

    def test_stats_route(self, client):
        client.run(TINY)
        stats = client.stats()
        assert stats["engine"] == "serial"
        assert stats["counters"]["serve.cells.executed"] == 2
        assert stats["store"]["writes"] == 2

    def test_invalid_body_is_400(self, client):
        with pytest.raises(ServeError) as exc:
            client.submit({"apps": ["nope"], "policies": ["shared"]})
        assert exc.value.status == 400
        assert "unknown workloads" in str(exc.value)

    def test_malformed_json_is_400(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            conn.request("POST", "/v1/sweeps", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
            assert b"JSON" in response.read()
        finally:
            conn.close()

    def test_wrong_method_is_405(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            conn.request("GET", "/v1/sweeps")
            assert conn.getresponse().status == 405
        finally:
            conn.close()

    def test_unknown_route_is_404(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            conn.request("GET", "/nope")
            assert conn.getresponse().status == 404
        finally:
            conn.close()


class TestCoalescingOverHttp:
    def test_concurrent_identical_submissions_execute_once(self, client):
        """Satellite: N concurrent clients, same grid -> one engine
        execution per cell and byte-identical aggregates for everyone."""
        n_clients = 4
        results: list[dict] = [None] * n_clients
        barrier = threading.Barrier(n_clients)

        def worker(i: int) -> None:
            barrier.wait()
            results[i] = client.run({**TINY, "client": f"client-{i}"})

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120)
        assert all(r is not None and r["status"] == "done" for r in results)
        # All clients share one sweep id and byte-identical aggregates.
        ids = {r["sweep_id"] for r in results}
        assert len(ids) == 1
        rendered = {
            json.dumps(
                {k: r["result"][k] for k in ("cells", "mean_speedups", "n_failures")},
                sort_keys=True,
            )
            for r in results
        }
        assert len(rendered) == 1
        stats = client.stats()
        # The hard invariant: 2 distinct cells -> exactly 2 executions,
        # no matter how many clients raced.
        assert stats["counters"]["serve.cells.executed"] == 2
        assert stats["counters"]["serve.cells.scheduled"] == 2
        assert stats["store"]["writes"] == 2


class TestBackpressureOverHttp:
    def test_429_carries_retry_after_header_and_body(self, tmp_path):
        settings = ServeSettings(
            port=0, data_dir=tmp_path / "data", jobs=1, max_pending_cells=1
        )
        handle = start_in_thread(settings)
        try:
            conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=10)
            try:
                conn.request(
                    "POST", "/v1/sweeps", body=json.dumps(TINY).encode(),
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                assert response.status == 429
                assert int(response.headers["Retry-After"]) >= 1
                body = json.loads(response.read())
                assert body["reason"] == "backlog"
            finally:
                conn.close()
            # The typed client surfaces the same thing as Backpressure.
            with pytest.raises(Backpressure) as exc:
                ServeClient(port=handle.port).submit(TINY)
            assert exc.value.retry_after_s >= 0.1
        finally:
            handle.stop()


class TestArchivedReplay:
    def test_events_replayed_from_journal_after_restart(self, tmp_path):
        settings = ServeSettings(port=0, data_dir=tmp_path / "data", jobs=1)
        handle = start_in_thread(settings)
        try:
            sweep_id = ServeClient(port=handle.port).run(TINY)["sweep_id"]
        finally:
            handle.stop()
        # New incarnation, same data dir: memory empty, journal remains.
        handle = start_in_thread(
            ServeSettings(port=0, data_dir=tmp_path / "data", jobs=1)
        )
        try:
            client = ServeClient(port=handle.port)
            status = client.status(sweep_id)
            assert status["status"] == "archived"
            assert status["completed"] == 2
            events = list(client.events(sweep_id))
            cells = [e for e in events if e["event"] == "cell"]
            assert len(cells) == 2 and all(e["replayed"] for e in cells)
        finally:
            handle.stop()
