"""Tests for the throughput-oriented and fairness-oriented baselines."""

import pytest

from repro.core.models import ThreadModelBank
from repro.partition.fairness import FairnessOrientedPolicy
from repro.partition.throughput import ThroughputOrientedPolicy, greedy_min_total_misses

from .test_partition_policies import make_obs


def miss_bank(curves, alpha=1.0):
    bank = ThreadModelBank(len(curves), alpha=alpha)
    for t, curve in enumerate(curves):
        for ways, mpki in curve.items():
            bank.observe(t, ways, mpki)
    return bank


class TestGreedyMinTotalMisses:
    def test_moves_capacity_to_steepest_curve(self):
        bank = miss_bank(
            [
                {2: 50.0, 4: 20.0, 8: 5.0},   # steep
                {2: 10.0, 4: 9.0, 8: 8.5},    # shallow
            ]
        )
        out = greedy_min_total_misses(bank, [4, 4], 8, min_ways=1)
        assert out[0] > out[1]
        assert sum(out) == 8

    def test_flat_curves_stay_put(self):
        bank = miss_bank([{4: 5.0, 8: 5.0}, {4: 5.0, 8: 5.0}])
        assert greedy_min_total_misses(bank, [4, 4], 8) == [4, 4]

    def test_min_ways_respected(self):
        bank = miss_bank([{1: 90.0, 8: 1.0}, {1: 5.0, 8: 4.0}])
        out = greedy_min_total_misses(bank, [4, 4], 8, min_ways=2)
        assert min(out) >= 2

    def test_sum_mismatch_rejected(self):
        bank = miss_bank([{4: 5.0}, {4: 5.0}])
        with pytest.raises(ValueError):
            greedy_min_total_misses(bank, [4, 3], 8)

    def test_total_predicted_misses_never_increase(self):
        bank = miss_bank(
            [
                {2: 40.0, 6: 15.0, 10: 8.0},
                {2: 25.0, 6: 18.0, 10: 14.0},
                {2: 5.0, 6: 4.0, 10: 3.9},
            ]
        )
        start = [4, 4, 4]
        out = greedy_min_total_misses(bank, start, 12)
        before = sum(float(bank.model(t)(start[t])) for t in range(3))
        after = sum(float(bank.model(t)(out[t])) for t in range(3))
        assert after <= before + 1e-9

    def test_ignores_thread_criticality(self):
        """The defining flaw in the intra-application setting: capacity
        goes to the steepest miss curve even when that thread is fast."""
        bank = miss_bank(
            [
                {4: 10.0, 8: 9.0},    # critical thread, shallow misses
                {4: 50.0, 8: 10.0},   # fast decoy, steep misses
            ]
        )
        out = greedy_min_total_misses(bank, [4, 4], 8)
        assert out[1] > out[0]


class TestThroughputPolicy:
    def test_bootstrap_miss_proportional(self):
        p = ThroughputOrientedPolicy(2, 8)
        out = p.on_interval(make_obs([3.0, 3.0], [4, 4], misses=[90, 10]))
        assert out[0] > out[1]
        assert sum(out) == 8

    def test_models_track_mpki(self):
        p = ThroughputOrientedPolicy(2, 8)
        p.on_interval(make_obs([3.0, 3.0], [4, 4], misses=[50, 10], instr=[1000, 1000]))
        ways, vals = p.bank.points(0)
        assert vals[0] == pytest.approx(50.0)  # 50 misses / 1k instructions

    def test_reset(self):
        p = ThroughputOrientedPolicy(2, 8)
        p.on_interval(make_obs([3.0, 3.0], [4, 4]))
        p.reset()
        assert p.bank.n_distinct(0) == 0

    def test_name(self):
        assert ThroughputOrientedPolicy(2, 8).name == "throughput"

    def test_valid_over_many_intervals(self):
        import numpy as np

        p = ThroughputOrientedPolicy(4, 32)
        rng = np.random.default_rng(9)
        targets = [8] * 4
        for i in range(20):
            out = p.on_interval(
                make_obs(
                    [2.0] * 4, targets, index=i,
                    misses=[int(5 + 50 * rng.random()) for _ in range(4)],
                )
            )
            assert sum(out) == 32 and min(out) >= 1
            targets = out


class TestFairnessPolicy:
    def test_balances_mpki(self):
        p = FairnessOrientedPolicy(2, 8, bootstrap_intervals=1)
        p.on_interval(make_obs([3.0, 3.0], [4, 4], misses=[80, 10]))
        out = p.on_interval(make_obs([3.0, 3.0], [6, 2], misses=[60, 20]))
        assert sum(out) == 8
        assert min(out) >= 1

    def test_equal_behaviour_stays_equal(self):
        p = FairnessOrientedPolicy(2, 8, bootstrap_intervals=1)
        p.on_interval(make_obs([3.0, 3.0], [4, 4], misses=[20, 20]))
        out = p.on_interval(make_obs([3.0, 3.0], [4, 4], misses=[20, 20]))
        assert out == [4, 4]

    def test_name(self):
        assert FairnessOrientedPolicy(2, 8).name == "fairness"

    def test_reset(self):
        p = FairnessOrientedPolicy(2, 8)
        p.on_interval(make_obs([3.0, 3.0], [4, 4]))
        p.reset()
        assert p.bank.n_distinct(0) == 0
