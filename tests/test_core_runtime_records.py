"""Tests for the runtime system wrapper and result records."""

import pytest

from repro.cache.stats import StatsSnapshot
from repro.core.records import RunResult
from repro.core.runtime import RuntimeSystem
from repro.partition.cpi import CPIProportionalPolicy
from repro.partition.static import StaticEqualPolicy

from .test_partition_policies import make_obs


def snap(n=2):
    return StatsSnapshot(
        accesses=(100,) * n,
        hits=(80,) * n,
        misses=(20,) * n,
        evictions=(10,) * n,
        inter_thread_hits=(5,) * n,
        inter_thread_evictions=(2,) * n,
        intra_thread_hits=(75,) * n,
    )


def result(cycles=1000.0, n=2, **kw):
    defaults = dict(
        app="x",
        policy="shared",
        n_threads=n,
        total_cycles=cycles,
        thread_instructions=(500,) * n,
        thread_busy_cycles=(900.0,) * n,
        thread_stall_cycles=(100.0,) * n,
        l2_totals=snap(n),
        thread_l1_accesses=(400,) * n,
        thread_l1_hits=(300,) * n,
    )
    defaults.update(kw)
    return RunResult(**defaults)


class TestRuntimeSystem:
    def test_delegates_to_policy(self):
        rt = RuntimeSystem(CPIProportionalPolicy(2, 8))
        out = rt.on_interval(make_obs([3.0, 1.0], [4, 4]))
        assert sum(out) == 8
        assert rt.invocations == 1
        assert len(rt.decisions) == 1

    def test_static_policy_records_no_decisions(self):
        rt = RuntimeSystem(StaticEqualPolicy(2, 8))
        assert rt.on_interval(make_obs([3.0, 1.0], [4, 4])) is None
        assert rt.invocations == 1
        assert rt.decisions == []

    def test_reconfigurations_count_changes_only(self):
        rt = RuntimeSystem(CPIProportionalPolicy(2, 8))
        rt.on_interval(make_obs([3.0, 1.0], [4, 4], index=0))   # -> (6,2): change
        rt.on_interval(make_obs([3.0, 1.0], [6, 2], index=1))   # -> (6,2): no change
        assert rt.invocations == 2
        assert rt.reconfigurations == 1

    def test_invalid_policy_output_rejected(self):
        class BadPolicy(StaticEqualPolicy):
            def on_interval(self, obs):
                return [1, 2]  # sums to 3, not 8

        rt = RuntimeSystem(BadPolicy(2, 8))
        with pytest.raises(ValueError):
            rt.on_interval(make_obs([1.0, 1.0], [4, 4]))

    def test_name_and_enforcement_passthrough(self):
        rt = RuntimeSystem(CPIProportionalPolicy(2, 8))
        assert rt.name == "cpi-proportional"
        assert rt.enforce_partition is True

    def test_reset(self):
        rt = RuntimeSystem(CPIProportionalPolicy(2, 8))
        rt.on_interval(make_obs([3.0, 1.0], [4, 4]))
        rt.reset()
        assert rt.invocations == 0
        assert rt.decisions == []


class TestRunResult:
    def test_performance_inverse_of_cycles(self):
        assert result(cycles=2000.0).performance == pytest.approx(1 / 2000.0)

    def test_speedup_over(self):
        fast = result(cycles=1000.0)
        slow = result(cycles=1200.0)
        assert fast.speedup_over(slow) == pytest.approx(0.2)
        assert slow.speedup_over(fast) == pytest.approx(-1 / 6)

    def test_thread_cpi(self):
        r = result()
        assert r.thread_cpi(0) == pytest.approx(900.0 / 500)

    def test_l1_metrics(self):
        r = result()
        assert r.total_memory_accesses == 800
        assert r.l1_hit_rate() == pytest.approx(0.75)
        assert r.l1_hit_rate(0) == pytest.approx(0.75)

    def test_inter_thread_share_of_all_accesses(self):
        r = result()
        # (5+5) hits + (2+2) evictions over 800 memory accesses
        assert r.inter_thread_share_of_all_accesses() == pytest.approx(14 / 800)

    def test_to_dict_roundtrips_core_fields(self):
        d = result().to_dict()
        assert d["app"] == "x"
        assert d["total_cycles"] == 1000.0
        assert d["thread_instructions"] == [500, 500]
        assert d["intervals"] == []

    def test_total_instructions(self):
        assert result().total_instructions == 1000
