"""Tests for the exporters (repro.obs.export)."""

import json

import pytest

from repro.obs import (
    JsonlTracer,
    MetricsEvent,
    RecordingTracer,
    chrome_trace,
    read_events,
    summarize,
    write_chrome_trace,
)
from repro.sim.driver import run_application


@pytest.fixture(scope="module")
def traced_run_records(tiny_config_module):
    tracer = RecordingTracer()
    run_application("swim", "model-based", tiny_config_module, tracer=tracer)
    return tracer.records


@pytest.fixture(scope="module")
def tiny_config_module():
    from repro.cache.geometry import CacheGeometry
    from repro.sim.config import SystemConfig

    return SystemConfig(
        n_threads=4,
        l2_geometry=CacheGeometry(sets=16, ways=8),
        interval_instructions=1_500,
        n_intervals=6,
        sections_per_interval=2,
    )


class TestReadEvents:
    def test_roundtrips_a_jsonl_trace(self, tmp_path, traced_run_records):
        path = tmp_path / "t.jsonl"
        path.write_text("".join(json.dumps(rec) + "\n" for rec in traced_run_records))
        records = read_events(path)
        assert len(records) == len(traced_run_records)
        assert records[0]["kind"] == traced_run_records[0]["kind"]

    def test_reads_jsonl_tracer_output(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTracer(path) as t:
            t.emit(MetricsEvent(snapshot={"counters": {}, "gauges": {}, "timers": {}}))
        (rec,) = read_events(path)
        assert rec["kind"] == "metrics"

    def test_rejects_chrome_traces_with_guidance(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text('[{"ph": "M"}]\n')
        with pytest.raises(ValueError, match="Chrome trace"):
            read_events(path)

    def test_rejects_invalid_json_with_line_number(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "span", "ts": 0}\nnot json\n')
        with pytest.raises(ValueError, match=":2"):
            read_events(path)

    def test_rejects_records_without_kind(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"ts": 0}\n')
        with pytest.raises(ValueError, match="kind"):
            read_events(path)

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "span", "ts": 0, "name": "x", "duration_s": 1}\n\n')
        assert len(read_events(path)) == 1


class TestChromeTrace:
    def test_emits_valid_trace_event_array(self, traced_run_records):
        events = chrome_trace(traced_run_records)
        json.dumps(events)  # JSON-serialisable
        assert all("ph" in e and "pid" in e for e in events)
        phases = {e["ph"] for e in events}
        assert "M" in phases  # process/thread metadata
        assert "C" in phases  # CPI / ways / convergence counter tracks
        names = {e["name"] for e in events if e["ph"] == "C"}
        assert any(n.startswith("cpi ") for n in names)
        assert any(n.startswith("ways ") for n in names)

    def test_interval_counters_carry_per_thread_args(self, traced_run_records):
        events = chrome_trace(traced_run_records)
        cpi_tracks = [e for e in events if e["ph"] == "C" and e["name"].startswith("cpi ")]
        assert cpi_tracks
        assert set(cpi_tracks[0]["args"]) == {"t0", "t1", "t2", "t3"}

    def test_job_end_becomes_complete_event(self):
        records = [
            {"kind": "job_start", "ts": 0.1, "label": "swim/shared",
             "app": "swim", "policy": "shared", "engine": "serial"},
            {"kind": "job_end", "ts": 1.1, "label": "swim/shared",
             "app": "swim", "policy": "shared", "engine": "serial",
             "ok": True, "attempts": 1, "duration_s": 1.0, "error": None},
        ]
        events = chrome_trace(records)
        (x,) = [e for e in events if e["ph"] == "X"]
        assert x["name"] == "swim/shared"
        assert x["dur"] == pytest.approx(1.0e6)
        assert x["ts"] == pytest.approx(0.1e6)

    def test_write_chrome_trace_produces_loadable_json(self, tmp_path, traced_run_records):
        path = tmp_path / "t.json"
        write_chrome_trace(path, traced_run_records)
        data = json.loads(path.read_text())
        assert isinstance(data, list)
        assert data, "trace array must not be empty"


class TestSummarize:
    def test_reports_run_trajectory_and_repartitions(self, traced_run_records):
        text = summarize(traced_run_records)
        assert "run swim/model-based" in text
        assert "per-thread CPI trajectory" in text
        assert "t0:" in text and "t3:" in text
        assert "repartitions:" in text
        assert "critical thread by interval" in text
        assert "convergence:" in text
        assert "time in phase" in text

    def test_reports_jobs_and_store_sections(self):
        records = [
            {"kind": "job_end", "ts": 1.0, "label": "swim/shared", "app": "swim",
             "policy": "shared", "engine": "serial", "ok": True, "attempts": 1,
             "duration_s": 0.5, "error": None},
            {"kind": "job_end", "ts": 2.0, "label": "cg/shared", "app": "cg",
             "policy": "shared", "engine": "serial", "ok": False, "attempts": 3,
             "duration_s": 0.0, "error": "ValueError: boom"},
            {"kind": "retry", "ts": 1.5, "label": "cg/shared", "engine": "serial",
             "attempt": 1, "error": "ValueError: boom"},
            {"kind": "store_hit", "ts": 0.1, "label": "swim/shared", "digest": "ab"},
            {"kind": "store_miss", "ts": 0.2, "label": "cg/shared", "digest": "cd",
             "corrupt": True},
        ]
        text = summarize(records)
        assert "jobs: 1 completed, 1 failed, 1 retried attempts" in text
        assert "slowest 1 jobs" in text
        assert "FAILED cg/shared: ValueError: boom" in text
        assert "result store: 1 hits, 1 misses (1 corrupt)" in text

    def test_top_limits_slowest_jobs(self):
        records = [
            {"kind": "job_end", "ts": float(i), "label": f"app{i}/shared", "app": f"app{i}",
             "policy": "shared", "engine": "serial", "ok": True, "attempts": 1,
             "duration_s": float(i), "error": None}
            for i in range(10)
        ]
        text = summarize(records, top=3)
        assert "slowest 3 jobs" in text
        assert "app9/shared" in text  # slowest listed
        assert "app0/shared" not in text

    def test_metrics_snapshot_renders(self):
        records = [
            {"kind": "metrics", "ts": 1.0, "snapshot": {
                "counters": {"exec.jobs_ok": 4},
                "gauges": {"sim.program_cache.size": 2},
                "timers": {"exec.job": {"count": 4, "total_s": 1.0,
                                        "mean_s": 0.25, "max_s": 0.5}},
            }},
        ]
        text = summarize(records)
        assert "exec.jobs_ok" in text
        assert "sim.program_cache.size" in text
        assert "n=4" in text

    def test_metrics_event_payload_matches_schema(self):
        # The CLI emits this as the trace's last record; pin the envelope.
        tracer = RecordingTracer()
        tracer.emit(MetricsEvent(snapshot={"counters": {}, "gauges": {}, "timers": {}}))
        (rec,) = tracer.records
        assert rec["kind"] == "metrics"
        assert "snapshot" in rec

    def test_empty_trace_summarizes(self):
        assert summarize([]).startswith("trace: 0 events")


class TestCrashSafetyEvents:
    def _records(self, *events):
        tracer = RecordingTracer()
        for event in events:
            tracer.emit(event)
        return tracer.records

    def test_summarize_reports_degradations_faults_and_interrupts(self):
        from repro.obs import EngineDegradedEvent, FaultInjectedEvent, InterruptEvent

        records = self._records(
            EngineDegradedEvent(engine="process-pool", reason="pool worker died running x"),
            FaultInjectedEvent(fault="job-exception", key="swim/shared", attempt=1),
            FaultInjectedEvent(fault="delay", key="cg/shared", attempt=2),
            InterruptEvent(signal="SIGINT", completed=3),
        )
        text = summarize(records)
        assert "engine degradations: 1" in text
        assert "WARNING process-pool degraded to serial: pool worker died" in text
        assert "injected faults: 2" in text
        assert "job-exception=1" in text and "delay=1" in text
        assert "interrupted by SIGINT: 3 cell(s) journaled" in text

    def test_new_events_become_chrome_instants(self):
        from repro.obs import EngineDegradedEvent, FaultInjectedEvent, InterruptEvent

        records = self._records(
            EngineDegradedEvent(engine="process-pool", reason="boom"),
            FaultInjectedEvent(fault="worker-death", key="k", attempt=1),
            InterruptEvent(signal="SIGTERM", completed=0),
        )
        instants = [e for e in chrome_trace(records) if e.get("ph") == "i"]
        assert {e["name"] for e in instants} >= {
            "engine_degraded",
            "fault_injected",
            "interrupt",
        }
