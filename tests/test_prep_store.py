"""Tests for :mod:`repro.prep` — the prepared-program artifact cache.

Covers the store mechanics (roundtrip, LRU, atomic publish, corruption
recovery), key invalidation (parameter bump, version bump), the
trace/stream bundle encodings, and the headline correctness bar: replay
results are byte-identical across {no cache, cold cache, warm cache} on
both execution engines.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import numpy as np
import pytest

import repro
from repro.cache.geometry import CacheGeometry
from repro.exec.jobs import JobSpec
from repro.exec.pool import ProcessPoolEngine
from repro.obs.metrics import METRICS
from repro.prep import (
    PrepStore,
    compiled_from_bundle,
    configure_prep,
    get_prep_store,
    key_digest,
    program_from_bundle,
    set_prep_store,
    stream_bundle,
    stream_key,
    trace_bundle,
    trace_key,
)
from repro.sim.config import SystemConfig
from repro.sim.driver import clear_program_cache, prepare_program, run_application
from repro.trace.builder import build_program
from repro.trace.workloads import get_workload


@pytest.fixture(autouse=True)
def _no_ambient_prep_store():
    """Prep caching must be opt-in per test; restore whatever was active."""
    previous = set_prep_store(None)
    try:
        yield
    finally:
        set_prep_store(previous)


def _result_bytes(app: str, policy: str, config: SystemConfig) -> str:
    clear_program_cache()
    result = run_application(app, policy, config)
    return json.dumps(result.to_dict(), sort_keys=True)


def _sample_key(tag: str = "a") -> dict:
    return {"kind": "test", "tag": tag, "n": 3}


def _sample_arrays() -> dict[str, np.ndarray]:
    return {
        "x": np.arange(12, dtype=np.int64),
        "y": np.linspace(0.0, 1.0, 5),
    }


class TestPrepStore:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        store = PrepStore(tmp_path)
        key = _sample_key()
        assert store.get(key) is None
        store.put(key, _sample_arrays(), {"note": "hello"})
        bundle = store.get(key)
        assert bundle is not None
        assert bundle.meta["note"] == "hello"
        assert bundle.meta["key"] == key
        np.testing.assert_array_equal(bundle.arrays["x"], np.arange(12, dtype=np.int64))
        np.testing.assert_array_equal(bundle.arrays["y"], np.linspace(0.0, 1.0, 5))
        assert store.stats() == {
            "hits": 1, "misses": 1, "writes": 1, "corrupt": 0, "races": 0,
            "stale_swept": 0, "fetched": 0,
        }
        assert key in store
        assert len(store) == 1

    def test_arrays_are_memory_mapped(self, tmp_path):
        store = PrepStore(tmp_path)
        store.put(_sample_key(), _sample_arrays())
        bundle = store.get(_sample_key())
        assert isinstance(bundle.arrays["x"], np.memmap)
        assert METRICS.counter("prep.bytes_mapped").value == bundle.nbytes

    def test_lru_serves_repeat_gets_in_process(self, tmp_path):
        store = PrepStore(tmp_path)
        store.put(_sample_key(), _sample_arrays())
        first = store.get(_sample_key())
        second = store.get(_sample_key())
        assert first is second  # same materialisation, not a re-mmap
        assert store.hits == 2

    def test_lru_evicts_beyond_limit(self, tmp_path):
        store = PrepStore(tmp_path, lru_limit=2)
        for tag in ("a", "b", "c"):
            store.put(_sample_key(tag), _sample_arrays())
            assert store.get(_sample_key(tag)) is not None
        assert len(store._lru) == 2
        # "a" was evicted from the LRU but still lives on disk.
        assert store.get(_sample_key("a")) is not None

    def test_distinct_keys_do_not_alias(self, tmp_path):
        store = PrepStore(tmp_path)
        store.put(_sample_key("a"), {"x": np.zeros(3, dtype=np.int64)})
        store.put(_sample_key("b"), {"x": np.ones(3, dtype=np.int64)})
        assert key_digest(_sample_key("a")) != key_digest(_sample_key("b"))
        np.testing.assert_array_equal(
            store.get(_sample_key("b")).arrays["x"], np.ones(3, dtype=np.int64)
        )

    def test_version_namespaces_are_disjoint(self, tmp_path):
        old = PrepStore(tmp_path, version="1.0.0")
        old.put(_sample_key(), _sample_arrays())
        new = PrepStore(tmp_path, version="2.0.0")
        assert new.get(_sample_key()) is None
        assert new.misses == 1
        assert PrepStore(tmp_path, version="1.0.0").get(_sample_key()) is not None

    def test_default_version_tracks_package(self, tmp_path):
        assert PrepStore(tmp_path).version == repro.__version__

    def test_corrupt_manifest_recovers_as_miss(self, tmp_path):
        store = PrepStore(tmp_path)
        path = store.put(_sample_key(), _sample_arrays())
        (path / "meta.json").write_text("{not json", encoding="utf-8")
        store._lru.clear()
        assert store.get(_sample_key()) is None
        assert store.corrupt == 1
        assert METRICS.counter("prep.corrupt").value == 1
        assert not path.exists()  # evicted wholesale
        # Regeneration re-publishes cleanly.
        store.put(_sample_key(), _sample_arrays())
        assert store.get(_sample_key()) is not None

    def test_truncated_array_recovers_as_miss(self, tmp_path):
        store = PrepStore(tmp_path)
        path = store.put(_sample_key(), _sample_arrays())
        with open(path / "x.npy", "r+b") as fh:
            fh.truncate(16)
        store._lru.clear()
        assert store.get(_sample_key()) is None
        assert store.corrupt == 1
        assert not path.exists()

    def test_mis_keyed_bundle_is_corruption(self, tmp_path):
        store = PrepStore(tmp_path)
        path = store.put(_sample_key(), _sample_arrays())
        meta = json.loads((path / "meta.json").read_text(encoding="utf-8"))
        meta["key"] = {"kind": "other"}
        (path / "meta.json").write_text(json.dumps(meta), encoding="utf-8")
        store._lru.clear()
        assert store.get(_sample_key()) is None
        assert store.corrupt == 1

    def test_racing_put_stands_down(self, tmp_path):
        a = PrepStore(tmp_path)
        b = PrepStore(tmp_path)
        a.put(_sample_key(), _sample_arrays())
        b.put(_sample_key(), _sample_arrays())  # loses the rename race
        assert b.races == 1
        assert b.writes == 0
        assert len(a) == 1
        assert a.get(_sample_key()) is not None

    def test_clear_removes_bundles_and_staging(self, tmp_path):
        store = PrepStore(tmp_path)
        store.put(_sample_key("a"), _sample_arrays())
        path = store.put(_sample_key("b"), _sample_arrays())
        stage = path.parent / ".stage-dead-xyz"
        stage.mkdir()
        (stage / "x.npy").write_bytes(b"junk")
        assert store.clear() == 2
        assert len(store) == 0
        assert not stage.exists()
        assert store.get(_sample_key("a")) is None

    def test_invalid_lru_limit_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            PrepStore(tmp_path, lru_limit=0)

    def test_configure_prep_installs_and_disables(self, tmp_path):
        store = configure_prep(tmp_path)
        assert get_prep_store() is store
        assert configure_prep(None) is None
        assert get_prep_store() is None


class TestKeys:
    def test_trace_key_changes_with_every_parameter(self):
        profile = get_workload("swim")
        base = dict(
            n_threads=4, n_intervals=6, interval_instructions=1500,
            sections_per_interval=2, seed=1, line_bytes=64, work_jitter=0.05,
        )
        digests = {key_digest(trace_key(profile, **base))}
        for field, bump in [
            ("n_threads", 8), ("n_intervals", 7), ("interval_instructions", 1501),
            ("sections_per_interval", 3), ("seed", 2), ("line_bytes", 32),
            ("work_jitter", 0.1),
        ]:
            digests.add(key_digest(trace_key(profile, **{**base, field: bump})))
        assert len(digests) == 8

    def test_trace_key_depends_on_profile_content_not_just_name(self):
        swim = get_workload("swim")
        art = get_workload("art")
        fake = type(swim)(
            name="swim", suite=swim.suite, description=swim.description,
            base_behaviors=art.base_behaviors, phases=art.phases,
        )
        kw = dict(
            n_threads=4, n_intervals=6, interval_instructions=1500,
            sections_per_interval=2, seed=1, line_bytes=64, work_jitter=0.05,
        )
        assert trace_key(swim, **kw) != trace_key(fake, **kw)

    def test_stream_key_ignores_l2_and_backend(self, tiny_config):
        import dataclasses

        from repro.cache.geometry import CacheGeometry

        profile = get_workload("swim")
        k1 = stream_key(profile, tiny_config)
        bigger_l2 = dataclasses.replace(
            tiny_config, l2_geometry=CacheGeometry(sets=32, ways=16)
        )
        assert stream_key(profile, bigger_l2) == k1
        other_seed = dataclasses.replace(tiny_config, seed=tiny_config.seed + 1)
        assert stream_key(profile, other_seed) != k1


class TestBundles:
    def test_trace_bundle_roundtrip(self, tmp_path):
        profile = get_workload("equake")
        program = build_program(profile, n_intervals=4, interval_instructions=1200, seed=3)
        store = PrepStore(tmp_path)
        arrays, meta = trace_bundle(program)
        store.put({"k": "t"}, arrays, meta)
        rebuilt = program_from_bundle(store.get({"k": "t"}))
        assert rebuilt.name == program.name
        assert rebuilt.meta == program.meta
        assert len(rebuilt.sections) == len(program.sections)
        for sec_a, sec_b in zip(program.sections, rebuilt.sections):
            for w_a, w_b in zip(sec_a.works, sec_b.works):
                np.testing.assert_array_equal(w_a.addrs, w_b.addrs)
                np.testing.assert_array_equal(w_a.gaps, w_b.gaps)

    def test_stream_bundle_roundtrip(self, tmp_path, tiny_config):
        profile = get_workload("art")
        compiled = prepare_program(profile, tiny_config)
        store = PrepStore(tmp_path)
        arrays, meta = stream_bundle(
            compiled, tiny_config.timing, tiny_config.l2_geometry.offset_bits
        )
        store.put({"k": "s"}, arrays, meta)
        rebuilt = compiled_from_bundle(store.get({"k": "s"}))
        assert rebuilt.name == compiled.name
        assert rebuilt.n_threads == compiled.n_threads
        for sec_a, sec_b in zip(compiled.sections, rebuilt.sections):
            for s_a, s_b in zip(sec_a, sec_b):
                np.testing.assert_array_equal(s_a.addresses, s_b.addresses)
                np.testing.assert_array_equal(s_a.d_instructions, s_b.d_instructions)
                np.testing.assert_array_equal(s_a.d_cycles, s_b.d_cycles)
                np.testing.assert_array_equal(s_a.miss_cycles, s_b.miss_cycles)
                assert s_a.tail_cycles == s_b.tail_cycles
                assert s_a.tail_instructions == s_b.tail_instructions
                assert s_a.total_instructions == s_b.total_instructions
                assert s_a.l1_accesses == s_b.l1_accesses
                assert s_a.l1_hits == s_b.l1_hits
        fold = rebuilt.fold_source
        assert fold is not None
        assert fold.matches(
            tiny_config.l2_geometry.offset_bits, tiny_config.timing.l2_hit_cycles
        )
        assert not fold.matches(
            tiny_config.l2_geometry.offset_bits + 1, tiny_config.timing.l2_hit_cycles
        )

    def test_builder_trace_hit_skips_generation(self, tmp_path):
        profile = get_workload("mgrid")
        kw = dict(n_intervals=4, interval_instructions=1200, seed=5)
        cold = build_program(profile, **kw)
        set_prep_store(PrepStore(tmp_path))
        store = get_prep_store()
        built = build_program(profile, **kw)  # miss + publish
        warm = build_program(profile, **kw)  # hit
        assert store.stats()["writes"] == 1
        assert store.stats()["hits"] == 1
        for prog in (built, warm):
            for sec_a, sec_b in zip(cold.sections, prog.sections):
                for w_a, w_b in zip(sec_a.works, sec_b.works):
                    np.testing.assert_array_equal(w_a.addrs, w_b.addrs)


class TestEndToEndEquivalence:
    APPS = ("swim", "art")
    POLICIES = ("model-based", "shared", "throughput")

    @pytest.mark.parametrize(
        "geometry",
        (CacheGeometry(sets=32, ways=16), CacheGeometry(sets=16, ways=8)),
        ids=("l2-32x16", "l2-16x8"),
    )
    @pytest.mark.parametrize("seed", (1, 7))
    def test_full_differential_matrix(self, tmp_path, geometry, seed):
        """The PR-3 differential matrix (4 apps x 6 policies x 2 seeds x
        2 geometries) must stay byte-identical across {no cache, cold
        cache, warm cache}."""
        import dataclasses

        from repro.partition import POLICY_REGISTRY

        config = SystemConfig.quick().with_(l2_geometry=geometry, seed=seed)
        for app in ("swim", "art", "equake", "mgrid"):
            set_prep_store(None)
            baselines = {
                policy: _result_bytes(app, policy, config)
                for policy in sorted(POLICY_REGISTRY)
            }
            store = PrepStore(tmp_path)
            store.clear()
            set_prep_store(store)
            for label in ("cold", "warm"):
                if label == "warm":
                    store._lru.clear()  # force the mmap path, not the LRU
                for policy in sorted(POLICY_REGISTRY):
                    assert _result_bytes(app, policy, config) == baselines[policy], (
                        app, policy, seed, dataclasses.astuple(geometry)[:2], label,
                    )
            assert store.stats()["writes"] == 2  # one trace + one stream bundle
            assert store.stats()["corrupt"] == 0

    def test_byte_identical_no_cold_warm(self, tmp_path, quick_config):
        """The acceptance bar: RunResult.to_dict() is byte-identical across
        {no cache, cold cache, warm cache} for every app x policy."""
        for app in self.APPS:
            for policy in self.POLICIES:
                set_prep_store(None)
                baseline = _result_bytes(app, policy, quick_config)
                set_prep_store(PrepStore(tmp_path))
                cold = _result_bytes(app, policy, quick_config)
                warm = _result_bytes(app, policy, quick_config)
                assert cold == baseline, (app, policy, "cold")
                assert warm == baseline, (app, policy, "warm")

    def test_param_bump_misses_version_bump_misses(self, tmp_path, quick_config):
        import dataclasses

        store = PrepStore(tmp_path)
        set_prep_store(store)
        _result_bytes("swim", "shared", quick_config)
        writes = store.stats()["writes"]
        assert writes == 2  # one trace + one stream bundle
        # Warm: no new writes.
        _result_bytes("swim", "shared", quick_config)
        assert store.stats()["writes"] == writes
        # Trace-parameter bump: full re-preparation.
        bumped = dataclasses.replace(quick_config, seed=quick_config.seed + 1)
        _result_bytes("swim", "shared", bumped)
        assert store.stats()["writes"] == writes + 2
        # Version bump orphans the namespace: cold again.
        set_prep_store(PrepStore(tmp_path, version="999.0.0"))
        _result_bytes("swim", "shared", quick_config)
        assert get_prep_store().stats() == {
            "hits": 0, "misses": 2, "writes": 2, "corrupt": 0, "races": 0,
            "stale_swept": 0, "fetched": 0,
        }

    def test_corrupted_artifact_regenerates_correctly(self, tmp_path, quick_config):
        store = PrepStore(tmp_path)
        set_prep_store(store)
        baseline = _result_bytes("equake", "model-based", quick_config)
        # Corrupt every bundle on disk, drop the in-process LRU.
        for meta_path in store.version_dir.glob("*/*/meta.json"):
            meta_path.write_text("garbage", encoding="utf-8")
        store._lru.clear()
        recovered = _result_bytes("equake", "model-based", quick_config)
        assert recovered == baseline
        assert store.stats()["corrupt"] == 2
        assert METRICS.counter("prep.corrupt").value == 2

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="predictable worker startup needs fork",
    )
    def test_pool_matches_serial_with_warm_store(self, tmp_path, quick_config):
        specs = [
            JobSpec(app=app, policy=policy, config=quick_config)
            for app in self.APPS
            for policy in ("model-based", "shared")
        ]
        set_prep_store(None)
        clear_program_cache()
        baseline = {
            s.digest: json.dumps(
                run_application(s.app, s.policy, s.config).to_dict(), sort_keys=True
            )
            for s in specs
        }
        set_prep_store(PrepStore(tmp_path))
        clear_program_cache()
        engine = ProcessPoolEngine(jobs=2, mp_context=multiprocessing.get_context("fork"))
        try:
            for label in ("cold", "warm"):
                outcomes = engine.run(specs)
                for spec, outcome in zip(specs, outcomes):
                    assert outcome.error is None, (label, spec.label, outcome.error)
                    got = json.dumps(outcome.result.to_dict(), sort_keys=True)
                    assert got == baseline[spec.digest], (label, spec.label)
        finally:
            engine.close()
        # The pooled workers published bundles into the shared store.
        assert len(get_prep_store()) > 0


def _hammer_prep(root: str, barrier, out) -> None:
    store = PrepStore(root, version="race")
    key = {"kind": "hammer"}
    arrays = {"x": np.arange(64, dtype=np.int64)}
    barrier.wait()
    store.put(key, arrays)
    bundle = store.get(key)
    ok = bundle is not None and bool(
        np.array_equal(bundle.arrays["x"], np.arange(64, dtype=np.int64))
    )
    out.put((os.getpid(), ok, store.stats()))


class TestConcurrentPublish:
    def test_eight_processes_one_key_single_bundle_survives(self, tmp_path):
        ctx = multiprocessing.get_context("spawn")
        barrier = ctx.Barrier(8)
        out = ctx.Queue()
        procs = [
            ctx.Process(target=_hammer_prep, args=(str(tmp_path), barrier, out))
            for _ in range(8)
        ]
        for p in procs:
            p.start()
        results = [out.get(timeout=60) for _ in procs]
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        assert all(ok for _, ok, _ in results)
        store = PrepStore(tmp_path, version="race")
        assert len(store) == 1
        bundle = store.get({"kind": "hammer"})
        np.testing.assert_array_equal(bundle.arrays["x"], np.arange(64, dtype=np.int64))
        # Exactly one writer won; every loser either saw the rename fail
        # (counted a race) or won nothing silently — and no staging
        # directories leak.
        total_writes = sum(stats["writes"] for _, _, stats in results)
        assert total_writes >= 1
        shards = [d for d in store.version_dir.iterdir() if d.is_dir()]
        for shard in shards:
            assert not any(e.name.startswith(".stage-") for e in shard.iterdir())


class TestStaleStagingSweep:
    """Hard-killed publishers leave ``.stage-*`` directories behind; the
    startup sweep reclaims them once they age past the TTL."""

    def _orphan_stage(self, store: PrepStore, age_s: float) -> str:
        import tempfile
        import time

        shard = store.version_dir / "ab"
        shard.mkdir(parents=True, exist_ok=True)
        tmp = tempfile.mkdtemp(dir=shard, prefix=".stage-dead-")
        stamp = time.time() - age_s
        os.utime(tmp, (stamp, stamp))
        return tmp

    def test_old_stage_dirs_swept_at_startup(self, tmp_path):
        first = PrepStore(tmp_path, stale_ttl_s=100.0)
        orphan = self._orphan_stage(first, age_s=500.0)
        reopened = PrepStore(tmp_path, stale_ttl_s=100.0)
        assert not os.path.exists(orphan)
        assert reopened.stale_swept == 1
        assert reopened.stats()["stale_swept"] == 1
        assert METRICS.snapshot()["counters"]["prep.stale_swept"] == 1

    def test_fresh_stage_dirs_survive(self, tmp_path):
        first = PrepStore(tmp_path, stale_ttl_s=100.0)
        live = self._orphan_stage(first, age_s=0.0)
        reopened = PrepStore(tmp_path, stale_ttl_s=100.0)
        assert os.path.exists(live)
        assert reopened.stale_swept == 0
        assert reopened.sweep_stale(0.0) == 1
