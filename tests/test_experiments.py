"""Tests for the experiment harness (every runner, quick config)."""

import json

import pytest

from repro.experiments import (
    ablation_cpi_vs_model,
    ablation_termination_rule,
    clear_result_cache,
    fig2_system_configuration,
    fig3_performance_variability,
    fig4_miss_variability,
    fig5_cpi_miss_correlation,
    fig6_swim_cpi_phases,
    fig7_swim_miss_phases,
    fig8_interaction_fraction,
    fig9_interaction_breakdown,
    fig10_way_sensitivity,
    fig15_runtime_models,
    fig18_partition_snapshot,
    fig19_vs_private,
    fig20_vs_shared,
    fig21_vs_throughput,
    fig22_eight_core,
    get_experiment,
    get_result,
    list_experiments,
)
from repro.sim.config import SystemConfig

APPS = ["swim", "cg"]


@pytest.fixture(scope="module")
def cfg():
    clear_result_cache()
    return SystemConfig.quick()


class TestRegistry:
    def test_all_paper_figures_present(self):
        names = set(list_experiments())
        for fig in ("fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
                    "fig9", "fig10", "fig15", "fig18", "fig19", "fig20",
                    "fig21", "fig22"):
            assert fig in names

    def test_ablations_present(self):
        names = set(list_experiments())
        assert {"ablation-interval", "ablation-fitting",
                "ablation-termination", "ablation-cpi-vs-model"} <= names

    def test_get_unknown(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_get_returns_callable(self):
        assert callable(get_experiment("fig3"))


class TestResultCache:
    def test_memoised(self, cfg):
        r1 = get_result("cg", "shared", cfg)
        r2 = get_result("cg", "shared", cfg)
        assert r1 is r2

    def test_distinct_policies_distinct_results(self, cfg):
        assert get_result("cg", "shared", cfg) is not get_result("cg", "static-equal", cfg)


class TestRunners:
    def test_fig2(self, cfg):
        res = fig2_system_configuration(cfg)
        text = res.format()
        assert "L2 cache" in text
        assert "UltraSparc" in text
        json.dumps(res.to_dict())

    def test_fig3(self, cfg):
        res = fig3_performance_variability(cfg, APPS)
        assert len(res.rows) == 2
        # Normalised: max is 1, all entries in (0, 1].
        for row in res.rows:
            vals = row[1 : 1 + cfg.n_threads]
            assert max(vals) == pytest.approx(1.0)
            assert all(0 < v <= 1.0 for v in vals)
        json.dumps(res.to_dict())

    def test_fig4(self, cfg):
        res = fig4_miss_variability(cfg, APPS)
        for row in res.rows:
            vals = row[1:]
            assert max(vals) == pytest.approx(1.0)
        json.dumps(res.to_dict())

    def test_fig5(self, cfg):
        res = fig5_cpi_miss_correlation(cfg, APPS)
        for row in res.rows:
            assert -1.0 <= row[1] <= 1.0
            assert -1.0 <= row[2] <= 1.0
        assert "average correlation" in res.notes

    def test_fig6(self, cfg):
        res = fig6_swim_cpi_phases(cfg)
        assert len(res.series) == cfg.n_threads
        lengths = {len(v) for v in res.series.values()}
        assert len(lengths) == 1

    def test_fig7(self, cfg):
        res = fig7_swim_miss_phases(cfg)
        (series,) = res.series.values()
        assert all(v >= 0 for v in series)

    def test_fig7_bad_thread(self, cfg):
        with pytest.raises(ValueError):
            fig7_swim_miss_phases(cfg, thread=99)

    def test_fig8(self, cfg):
        res = fig8_interaction_fraction(cfg, APPS)
        for row in res.rows:
            assert 0.0 <= float(row[1]) <= 100.0

    def test_fig9(self, cfg):
        res = fig9_interaction_breakdown(cfg, APPS)
        for row in res.rows:
            assert float(row[1]) + float(row[2]) == pytest.approx(100.0)

    def test_fig10(self, cfg):
        res = fig10_way_sensitivity(cfg, "swim", way_points=[4, 8], threads=[0, 2])
        assert set(res.cpi) == {0, 2}
        assert all(len(v) == 2 for v in res.cpi.values())
        res.format()

    def test_fig15(self, cfg):
        res = fig15_runtime_models(cfg, "cg", way_grid=[2, 4, 8, 12])
        assert sum(res.optimized_partition) == cfg.total_ways
        assert res.predicted_cpi_optimized <= res.predicted_cpi_equal + 1e-9
        assert len(res.curves) == cfg.n_threads
        res.format()

    def test_fig18(self, cfg):
        res = fig18_partition_snapshot(cfg, "cg", n_intervals=4)
        assert len(res.rows) == 4
        # First interval starts from the equal partition.
        assert res.rows[0]["targets"] == [cfg.total_ways // cfg.n_threads] * cfg.n_threads
        res.format()

    def test_fig18_range_check(self, cfg):
        with pytest.raises(ValueError):
            fig18_partition_snapshot(cfg, "cg", n_intervals=9999)

    def test_fig19_20_21(self, cfg):
        for fn in (fig19_vs_private, fig20_vs_shared, fig21_vs_throughput):
            res = fn(cfg, APPS)
            assert len(res.speedups) == 2
            assert res.maximum >= res.average
            res.format()
            json.dumps(res.to_dict())

    def test_fig22(self, cfg):
        res = fig22_eight_core(cfg.with_(n_threads=8), ["ft"])
        assert res.vs_private.apps == ["ft"]
        res.format()

    def test_ablation_termination(self, cfg):
        res = ablation_termination_rule(cfg, ["cg"])
        assert len(res.rows) == 1
        res.format()

    def test_ablation_cpi_vs_model(self, cfg):
        res = ablation_cpi_vs_model(cfg, APPS)
        assert len(res.rows) == 2
        assert "model-based" in res.notes
