"""Tests for program structure and barrier accounting."""

import numpy as np
import pytest

from repro.sync.barrier import BarrierEvent, BarrierLog
from repro.sync.program import Section, SyntheticProgram, ThreadWork


def work(n=4, gap=1):
    return ThreadWork(
        addrs=np.arange(n, dtype=np.int64) * 64,
        gaps=np.full(n, gap, dtype=np.int32),
    )


class TestThreadWork:
    def test_instruction_count(self):
        w = work(n=4, gap=2)
        assert w.instructions == 4 * 2 + 4
        assert w.n_mem_ops == 4

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ThreadWork(addrs=np.zeros(3, dtype=np.int64), gaps=np.zeros(2, dtype=np.int32))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            ThreadWork(addrs=np.zeros((2, 2), dtype=np.int64), gaps=np.zeros((2, 2), dtype=np.int32))


class TestSectionAndProgram:
    def test_section_totals(self):
        s = Section(works=(work(2), work(3)))
        assert s.n_threads == 2
        assert s.instructions == work(2).instructions + work(3).instructions

    def test_empty_section_rejected(self):
        with pytest.raises(ValueError):
            Section(works=())

    def test_program_thread_count_consistency(self):
        s1 = Section(works=(work(), work()))
        s2 = Section(works=(work(),))
        with pytest.raises(ValueError):
            SyntheticProgram(name="p", sections=(s1, s2))

    def test_program_totals(self):
        s = Section(works=(work(2), work(2)))
        p = SyntheticProgram(name="p", sections=(s, s))
        assert p.n_threads == 2
        assert p.instructions == 2 * s.instructions
        assert p.thread_instructions(0) == 2 * work(2).instructions

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            SyntheticProgram(name="p", sections=())


class TestBarrier:
    def test_event_release_and_critical(self):
        ev = BarrierEvent(section_index=0, arrivals=(10.0, 30.0, 20.0))
        assert ev.release_cycle == 30.0
        assert ev.critical_thread == 1
        assert ev.slack(0) == 20.0
        assert ev.slack(1) == 0.0
        assert ev.total_slack == 30.0

    def test_log_histogram(self):
        log = BarrierLog(2)
        log.record(0, [5.0, 9.0])
        log.record(1, [8.0, 3.0])
        log.record(2, [1.0, 2.0])
        assert log.critical_thread_histogram() == [1, 2]

    def test_log_slack_totals(self):
        log = BarrierLog(2)
        log.record(0, [5.0, 9.0])
        log.record(1, [8.0, 3.0])
        assert log.total_slack_per_thread() == [4.0, 5.0]

    def test_wrong_arrival_count_rejected(self):
        log = BarrierLog(3)
        with pytest.raises(ValueError):
            log.record(0, [1.0, 2.0])

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            BarrierLog(0)
