"""Tests for largest-remainder way apportionment."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mathx.rounding import largest_remainder_apportion


class TestLargestRemainder:
    def test_proportional_exact(self):
        assert largest_remainder_apportion([1, 1, 1, 1], 32) == [8, 8, 8, 8]

    def test_paper_formula_example(self):
        # CPI-proportional: thread with twice the CPI gets about twice the ways.
        out = largest_remainder_apportion([2.0, 1.0, 1.0], 32)
        assert sum(out) == 32
        assert out[0] > out[1] == out[2]

    def test_sum_preserved(self):
        out = largest_remainder_apportion([3.7, 1.1, 9.2, 0.4], 32)
        assert sum(out) == 32

    def test_minimum_enforced(self):
        out = largest_remainder_apportion([100.0, 0.0, 0.0, 0.0], 32, minimum=1)
        assert out[1:] == [1, 1, 1]
        assert out[0] == 29

    def test_minimum_zero_allows_starvation(self):
        out = largest_remainder_apportion([1.0, 0.0], 4, minimum=0)
        assert out == [4, 0]

    def test_all_zero_shares_treated_uniform(self):
        assert largest_remainder_apportion([0, 0, 0, 0], 8) == [2, 2, 2, 2]

    def test_deterministic_tie_break_by_index(self):
        out1 = largest_remainder_apportion([1, 1, 1], 4)
        out2 = largest_remainder_apportion([1, 1, 1], 4)
        assert out1 == out2 == [2, 1, 1]

    def test_total_too_small_rejected(self):
        with pytest.raises(ValueError):
            largest_remainder_apportion([1, 1, 1], 2, minimum=1)

    def test_negative_share_rejected(self):
        with pytest.raises(ValueError):
            largest_remainder_apportion([1, -1], 8)

    def test_nan_share_rejected(self):
        with pytest.raises(ValueError):
            largest_remainder_apportion([1, float("nan")], 8)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            largest_remainder_apportion([], 8)

    def test_negative_minimum_rejected(self):
        with pytest.raises(ValueError):
            largest_remainder_apportion([1, 1], 8, minimum=-1)

    def test_single_recipient_gets_everything(self):
        assert largest_remainder_apportion([0.3], 32) == [32]

    def test_monotone_in_share(self):
        out = largest_remainder_apportion([5.0, 3.0, 1.0], 30, minimum=1)
        assert out[0] >= out[1] >= out[2]

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=8),
        st.integers(min_value=0, max_value=64),
        st.integers(min_value=0, max_value=2),
    )
    def test_property_sum_and_floor(self, shares, total, minimum):
        if total < minimum * len(shares):
            with pytest.raises(ValueError):
                largest_remainder_apportion(shares, total, minimum=minimum)
            return
        out = largest_remainder_apportion(shares, total, minimum=minimum)
        assert sum(out) == total
        assert all(v >= minimum for v in out)
        assert len(out) == len(shares)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0.01, max_value=100, allow_nan=False), min_size=2, max_size=6))
    def test_property_within_one_of_ideal(self, shares):
        total = 32
        out = largest_remainder_apportion(shares, total, minimum=0)
        ssum = sum(shares)
        for got, share in zip(out, shares, strict=True):
            ideal = share / ssum * total
            assert ideal - 1 < got < ideal + 1
