"""Tests for the model-based partitioner and its reallocation loop."""

import pytest

from repro.core.models import ThreadModelBank
from repro.partition.model_based import ModelBasedPolicy, optimize_max_cpi

from .test_partition_policies import make_obs


def bank_from_curves(curves, *, alpha=1.0):
    """Build a bank from explicit (ways -> cpi) dicts, one per thread."""
    bank = ThreadModelBank(len(curves), alpha=alpha)
    for t, curve in enumerate(curves):
        for ways, cpi in curve.items():
            bank.observe(t, ways, cpi)
    return bank


class TestOptimizeMaxCpi:
    def test_feeds_sensitive_critical_thread(self):
        # Thread 0: steep CPI curve (critical, sensitive); thread 1: flat, fast.
        bank = bank_from_curves(
            [
                {2: 10.0, 4: 8.0, 8: 4.0},
                {2: 2.0, 4: 2.0, 8: 2.0},
            ]
        )
        out = optimize_max_cpi(bank, [4, 4], 8, min_ways=1)
        assert out[0] > out[1]
        assert sum(out) == 8

    def test_flat_models_keep_partition(self):
        bank = bank_from_curves([{4: 3.0, 8: 3.0}, {4: 3.0, 8: 3.0}])
        assert optimize_max_cpi(bank, [4, 4], 8) == [4, 4]

    def test_min_ways_respected(self):
        bank = bank_from_curves(
            [{1: 20.0, 8: 2.0}, {1: 6.0, 8: 1.0}, {1: 6.0, 8: 1.0}]
        )
        out = optimize_max_cpi(bank, [4, 2, 2], 8, min_ways=1)
        assert min(out) >= 1
        assert sum(out) == 8

    def test_sum_mismatch_rejected(self):
        bank = bank_from_curves([{4: 2.0}, {4: 2.0}])
        with pytest.raises(ValueError):
            optimize_max_cpi(bank, [4, 5], 8)

    def test_wrong_length_rejected(self):
        bank = bank_from_curves([{4: 2.0}, {4: 2.0}])
        with pytest.raises(ValueError):
            optimize_max_cpi(bank, [8], 8)

    def test_negative_gain_threshold_rejected(self):
        bank = bank_from_curves([{4: 2.0}, {4: 2.0}])
        with pytest.raises(ValueError):
            optimize_max_cpi(bank, [4, 4], 8, min_rel_gain=-0.1)

    def test_improvement_rule_continues_past_identity_change(self):
        """The runner-up deadlock scenario: thread 1 sits just below
        thread 0.  The literal paper rule freezes; the improvement rule
        keeps descending and ends more balanced."""
        curves = [
            {4: 6.0, 6: 4.0, 8: 3.0},   # critical, steep
            {4: 5.9, 6: 4.5, 8: 3.6},   # runner-up just below, also steep
            {4: 1.0, 6: 1.0, 8: 1.0},   # flat donor
            {4: 1.0, 6: 1.0, 8: 1.0},   # flat donor
        ]
        literal = optimize_max_cpi(
            bank_from_curves(curves), [4, 4, 4, 4], 16, paper_termination=True
        )
        improved = optimize_max_cpi(
            bank_from_curves(curves), [4, 4, 4, 4], 16, paper_termination=False
        )
        assert literal == [4, 4, 4, 4]  # frozen by the identity flip
        assert improved[0] > 4 and improved[1] > 4  # both big threads fed
        assert sum(improved) == 16

    def test_monotone_descent_of_predicted_max(self):
        bank = bank_from_curves(
            [
                {2: 12.0, 8: 6.0, 14: 3.0},
                {2: 8.0, 8: 5.0, 14: 4.0},
                {2: 2.0, 8: 1.5, 14: 1.2},
                {2: 2.0, 8: 1.5, 14: 1.2},
            ]
        )
        start = [8, 8, 8, 8]
        out = optimize_max_cpi(bank, start, 32)
        before = max(float(bank.model(t)(start[t])) for t in range(4))
        after = max(float(bank.model(t)(out[t])) for t in range(4))
        assert after <= before

    def test_insensitive_critical_thread_gains_nothing(self):
        """Paper's noted limiting case: if the critical thread is cache
        insensitive, dynamic partitioning cannot help."""
        bank = bank_from_curves(
            [
                {4: 9.0, 8: 9.0, 12: 9.0},  # critical but flat
                {4: 3.0, 8: 2.0, 12: 1.5},
            ]
        )
        assert optimize_max_cpi(bank, [8, 8], 16) == [8, 8]


class TestModelBasedPolicy:
    def test_bootstrap_uses_cpi_proportional(self):
        p = ModelBasedPolicy(4, 32, bootstrap_intervals=2)
        out = p.on_interval(make_obs([4.0, 1.0, 1.0, 1.0], [8] * 4, index=0))
        assert sum(out) == 32
        assert out[0] > out[1]

    def test_switches_to_model_after_bootstrap(self):
        p = ModelBasedPolicy(2, 8, bootstrap_intervals=1)
        p.on_interval(make_obs([6.0, 2.0], [4, 4], index=0))
        out = p.on_interval(make_obs([5.0, 2.2], [5, 3], index=1))
        assert sum(out) == 8

    def test_observations_accumulate(self):
        p = ModelBasedPolicy(2, 8)
        p.on_interval(make_obs([6.0, 2.0], [4, 4], index=0))
        p.on_interval(make_obs([4.0, 2.5], [6, 2], index=1))
        assert p.bank.n_distinct(0) == 2
        assert p.bank.n_distinct(1) == 2

    def test_reset_clears_state(self):
        p = ModelBasedPolicy(2, 8)
        p.on_interval(make_obs([6.0, 2.0], [4, 4]))
        p.reset()
        assert p.bank.n_distinct(0) == 0
        assert p._intervals_seen == 0

    def test_zero_instruction_thread_skipped(self):
        p = ModelBasedPolicy(2, 8)
        obs = make_obs([6.0, 0.0], [4, 4], instr=[1000, 0])
        out = p.on_interval(obs)
        assert sum(out) == 8
        assert p.bank.n_distinct(1) == 0

    def test_invalid_bootstrap_rejected(self):
        with pytest.raises(ValueError):
            ModelBasedPolicy(2, 8, bootstrap_intervals=0)

    def test_name(self):
        assert ModelBasedPolicy(2, 8).name == "model-based"

    def test_targets_always_valid_over_many_intervals(self):
        p = ModelBasedPolicy(4, 32)
        import numpy as np

        rng = np.random.default_rng(5)
        targets = [8, 8, 8, 8]
        for i in range(30):
            cpi = [float(2 + 8 * rng.random()) for _ in range(4)]
            out = p.on_interval(make_obs(cpi, targets, index=i))
            assert sum(out) == 32
            assert min(out) >= 1
            targets = out
