"""Tests for the partitioning policies (base, static, CPI-proportional)."""

import pytest

from repro.cache.stats import StatsSnapshot
from repro.core.records import IntervalObservation
from repro.partition.base import PartitioningPolicy, equal_targets
from repro.partition.cpi import CPIProportionalPolicy
from repro.partition.static import SharedCachePolicy, StaticEqualPolicy, StaticPolicy


def make_obs(cpi, targets, *, index=0, instr=None, misses=None):
    n = len(cpi)
    instr = instr or [1000] * n
    misses = misses or [10] * n
    snap = StatsSnapshot(
        accesses=tuple(m * 4 for m in misses),
        hits=tuple(m * 3 for m in misses),
        misses=tuple(misses),
        evictions=tuple(misses),
        inter_thread_hits=(0,) * n,
        inter_thread_evictions=(0,) * n,
        intra_thread_hits=tuple(m * 3 for m in misses),
    )
    return IntervalObservation(
        index=index,
        cpi=tuple(cpi),
        instructions=tuple(instr),
        busy_cycles=tuple(c * i for c, i in zip(cpi, instr, strict=True)),
        targets=tuple(targets),
        l2=snap,
    )


class TestEqualTargets:
    def test_even_split(self):
        assert equal_targets(4, 32) == [8, 8, 8, 8]

    def test_remainder_to_low_ids(self):
        assert equal_targets(3, 32) == [11, 11, 10]

    def test_too_few_ways_rejected(self):
        with pytest.raises(ValueError):
            equal_targets(5, 4)


class TestObservationHelpers:
    def test_critical_thread(self):
        obs = make_obs([2.0, 9.0, 4.0], [8, 8, 16])
        assert obs.critical_thread == 1
        assert obs.overall_cpi == 9.0
        assert obs.n_threads == 3


class TestStaticPolicies:
    def test_shared_policy_disables_enforcement(self):
        p = SharedCachePolicy(4, 32)
        assert p.enforce_partition is False
        assert p.on_interval(make_obs([1, 2, 3, 4], [8, 8, 8, 8])) is None

    def test_static_equal(self):
        p = StaticEqualPolicy(4, 32)
        assert p.initial_targets() == [8, 8, 8, 8]
        assert p.on_interval(make_obs([1, 2, 3, 4], [8, 8, 8, 8])) is None

    def test_static_arbitrary(self):
        p = StaticPolicy(4, 32, [20, 4, 4, 4])
        assert p.initial_targets() == [20, 4, 4, 4]
        assert "static" in p.name

    def test_static_validates_sum(self):
        with pytest.raises(ValueError):
            StaticPolicy(4, 32, [20, 4, 4, 5])

    def test_static_validates_min_ways(self):
        with pytest.raises(ValueError):
            StaticPolicy(4, 32, [29, 1, 1, 1], min_ways=2)

    def test_min_ways_infeasible_rejected(self):
        with pytest.raises(ValueError):
            StaticEqualPolicy(4, 4, min_ways=2)


class TestCPIProportional:
    def test_proportional_allocation(self):
        p = CPIProportionalPolicy(4, 32)
        out = p.on_interval(make_obs([4.0, 2.0, 1.0, 1.0], [8, 8, 8, 8]))
        assert sum(out) == 32
        assert out[0] > out[1] > out[2] >= out[3]
        # Equal CPIs may differ by at most one way (rounding tie-break).
        assert out[2] - out[3] <= 1

    def test_paper_formula_shape(self):
        # partition_t = CPI_t / sum(CPI) * ways: equal CPIs -> equal ways.
        p = CPIProportionalPolicy(4, 32)
        assert p.on_interval(make_obs([3.0] * 4, [8] * 4)) == [8, 8, 8, 8]

    def test_min_ways_respected(self):
        p = CPIProportionalPolicy(4, 32, min_ways=2)
        out = p.on_interval(make_obs([100.0, 0.01, 0.01, 0.01], [8] * 4))
        assert min(out) >= 2
        assert sum(out) == 32

    def test_reset_is_noop(self):
        p = CPIProportionalPolicy(4, 32)
        p.reset()  # stateless; must not raise

    def test_name(self):
        assert CPIProportionalPolicy(4, 32).name == "cpi-proportional"


class TestBaseValidation:
    def test_validate_rejects_bad_sum(self):
        p = CPIProportionalPolicy(2, 8)
        with pytest.raises(ValueError):
            p._validate([4, 5])

    def test_validate_rejects_wrong_length(self):
        p = CPIProportionalPolicy(2, 8)
        with pytest.raises(ValueError):
            p._validate([8])

    def test_cannot_instantiate_abstract(self):
        with pytest.raises(TypeError):
            PartitioningPolicy(2, 8)  # type: ignore[abstract]
