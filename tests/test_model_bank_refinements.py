"""Tests for the model bank's monotonisation, aging, and the policy's
trust region and probe mechanisms."""

import pytest

from repro.core.models import ThreadModelBank
from repro.partition.model_based import ModelBasedPolicy, optimize_max_cpi

from .test_partition_model_based import bank_from_curves
from .test_partition_policies import make_obs


class TestMonotonisation:
    def test_poisoned_knot_does_not_block_feeding(self):
        """A stale pessimistic sample mid-curve must not make the model
        predict that more ways hurt."""
        bank = ThreadModelBank(1, alpha=1.0, monotone=True)
        bank.observe(0, 1, 4.7)
        bank.observe(0, 4, 7.4)  # poisoned transient sample
        bank.observe(0, 6, 3.4)
        bank.observe(0, 8, 3.0)
        m = bank.model(0)
        assert m(2.0) <= m(1.0) + 1e-9
        assert m(4.0) <= m(1.0) + 1e-9

    def test_monotone_disabled_keeps_raw_values(self):
        bank = ThreadModelBank(1, alpha=1.0, monotone=False, max_age=None)
        bank.observe(0, 1, 4.0)
        bank.observe(0, 4, 7.0)
        bank.observe(0, 8, 3.0)
        _, vals = bank.points(0)
        assert list(vals) == [4.0, 7.0, 3.0]

    def test_points_monotone_when_enabled(self):
        bank = ThreadModelBank(1, alpha=1.0, monotone=True, max_age=None)
        for w, v in [(1, 2.0), (4, 9.0), (8, 1.0)]:
            bank.observe(0, w, v)
        _, vals = bank.points(0)
        assert all(vals[i] >= vals[i + 1] for i in range(len(vals) - 1))


class TestAging:
    def test_stale_cells_dropped(self):
        bank = ThreadModelBank(1, alpha=1.0, max_age=3, monotone=False)
        bank.observe(0, 2, 9.0)  # tick 1, goes stale
        for _ in range(3):  # ticks 2..4 at ways=8
            bank.observe(0, 8, 3.0)
        bank.observe(0, 6, 4.0)  # tick 5: second fresh knot
        ways, _ = bank.points(0)
        assert 2.0 not in ways  # stale, and two fresh knots remain
        assert 8.0 in ways and 6.0 in ways

    def test_fallback_keeps_two_most_recent(self):
        bank = ThreadModelBank(1, alpha=1.0, max_age=2, monotone=False)
        bank.observe(0, 2, 9.0)   # tick 1
        bank.observe(0, 4, 6.0)   # tick 2
        for _ in range(4):        # ticks 3..6, all at ways=8
            bank.observe(0, 8, 3.0)
        ways, _ = bank.points(0)
        # Only ways=8 is fresh; the fallback keeps the 2 most recent knots.
        assert len(ways) == 2
        assert 8.0 in ways and 4.0 in ways

    def test_aging_disabled(self):
        bank = ThreadModelBank(1, alpha=1.0, max_age=None, monotone=False)
        bank.observe(0, 2, 9.0)
        for _ in range(50):
            bank.observe(0, 8, 3.0)
        ways, _ = bank.points(0)
        assert 2.0 in ways

    def test_invalid_max_age(self):
        with pytest.raises(ValueError):
            ThreadModelBank(1, max_age=0)


class TestTrustRegion:
    CURVES = [
        {6: 50.0, 8: 46.0},  # shallow persistent gains: -2 CPI per way
        {6: 1.0, 8: 1.0},
        {6: 1.0, 8: 1.0},
        {6: 1.0, 8: 1.0},
    ]

    def test_step_bounded(self):
        out = optimize_max_cpi(bank_from_curves(self.CURVES), [8, 8, 8, 8], 32, max_step=3)
        assert out[0] <= 11
        assert all(out[t] >= 5 for t in range(1, 4))

    def test_unbounded_mode(self):
        out = optimize_max_cpi(bank_from_curves(self.CURVES), [8, 8, 8, 8], 32, max_step=None)
        assert out[0] > 11  # free to take much more in one call


class TestProbe:
    def make_policy(self, **kw):
        return ModelBasedPolicy(2, 8, bootstrap_intervals=1, **kw)

    def test_probe_fires_on_frozen_unbalanced_state(self):
        p = self.make_policy()
        # Bootstrap interval.
        p.on_interval(make_obs([6.0, 2.0], [4, 4], index=0))
        # Flat models around the operating point -> optimizer makes no
        # move -> the probe pushes one way to the slow thread.
        out1 = p.on_interval(make_obs([6.0, 2.0], [6, 2], index=1))
        assert out1 == [7, 1]

    def test_successful_probe_kept(self):
        p = self.make_policy()
        p.on_interval(make_obs([6.0, 2.0], [4, 4], index=0))
        out1 = p.on_interval(make_obs([6.0, 2.0], [6, 2], index=1))
        assert out1 == [7, 1]
        # The probe clearly paid off (max CPI 6.0 -> 4.0): keep the way.
        out2 = p.on_interval(make_obs([4.0, 2.0], tuple(out1), index=2))
        assert out2[0] >= 7

    def test_failed_probe_reverted_with_cooldown(self):
        p = self.make_policy()
        p.on_interval(make_obs([6.0, 2.0], [4, 4], index=0))
        t1 = p.on_interval(make_obs([6.0, 2.0], [6, 2], index=1))
        assert t1 == [7, 1]
        # No improvement in overall CPI -> probe reverted...
        t2 = p.on_interval(make_obs([6.0, 2.0], tuple(t1), index=2))
        assert t2 == [6, 2]
        # ...and the cooldown blocks an immediate re-probe.
        t3 = p.on_interval(make_obs([6.0, 2.0], tuple(t2), index=3))
        assert t3 == [6, 2]

    def test_probe_disabled(self):
        p = self.make_policy(probe=False)
        p.on_interval(make_obs([6.0, 2.0], [4, 4], index=0))
        out1 = p.on_interval(make_obs([6.0, 2.0], [6, 2], index=1))
        out2 = p.on_interval(make_obs([6.0, 2.0], tuple(out1), index=2))
        assert out2 == out1  # frozen, by design

    def test_balanced_app_not_probed(self):
        p = self.make_policy()
        p.on_interval(make_obs([3.0, 3.0], [4, 4], index=0))
        out = p.on_interval(make_obs([3.0, 3.0], [4, 4], index=1))
        assert out == [4, 4]

    def test_invalid_probe_threshold(self):
        with pytest.raises(ValueError):
            ModelBasedPolicy(2, 8, probe_threshold=0.5)

    def test_reset_clears_probe_state(self):
        p = self.make_policy()
        p.on_interval(make_obs([6.0, 2.0], [4, 4], index=0))
        p.on_interval(make_obs([6.0, 2.0], [6, 2], index=1))
        p.reset()
        assert p._probe_state is None
        assert p._cooldown_until == {}
