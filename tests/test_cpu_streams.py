"""Tests for timing model and L2 stream compilation."""

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.cpu.streams import compile_program, compile_thread_work
from repro.cpu.timing import TimingModel
from repro.sync.program import Section, SyntheticProgram, ThreadWork
from repro.trace.layout import STREAM_BASE_ADDRESS


@pytest.fixture
def l1():
    return CacheGeometry(sets=2, ways=2, line_bytes=64)


class TestTimingModel:
    def test_defaults_valid(self):
        t = TimingModel()
        assert t.l1_hit_cycles <= t.l2_hit_cycles <= t.mem_cycles

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            TimingModel(l2_hit_cycles=5, l1_hit_cycles=10)

    def test_stream_between_l2_and_mem(self):
        with pytest.raises(ValueError):
            TimingModel(stream_miss_cycles=5000.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TimingModel(mem_cycles=-1)

    def test_zero_base_cpi_rejected(self):
        with pytest.raises(ValueError):
            TimingModel(base_cpi=0)

    def test_hashable_frozen(self):
        assert hash(TimingModel()) == hash(TimingModel())


class TestCompileThreadWork:
    def test_all_hits_empty_stream(self, l1):
        # Same line over and over: only the first access reaches L2.
        addrs = np.full(10, 64, dtype=np.int64)
        gaps = np.full(10, 2, dtype=np.int32)
        s = compile_thread_work(ThreadWork(addrs=addrs, gaps=gaps), l1, TimingModel())
        assert s.n_l2_accesses == 1
        assert s.l1_accesses == 10
        assert s.l1_hits == 9
        assert s.total_instructions == 10 * 3

    def test_deltas_partition_instructions(self, l1):
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 1 << 14, size=500, dtype=np.int64)
        gaps = rng.integers(0, 5, size=500).astype(np.int32)
        s = compile_thread_work(ThreadWork(addrs=addrs, gaps=gaps), l1, TimingModel())
        assert int(s.d_instructions.sum()) + s.tail_instructions == s.total_instructions

    def test_deltas_partition_cycles(self, l1):
        timing = TimingModel()
        rng = np.random.default_rng(1)
        addrs = rng.integers(0, 1 << 14, size=300, dtype=np.int64)
        gaps = rng.integers(0, 4, size=300).astype(np.int32)
        s = compile_thread_work(ThreadWork(addrs=addrs, gaps=gaps), l1, timing)
        expected = float(gaps.sum()) * timing.base_cpi + 300 * timing.l1_hit_cycles
        assert float(s.d_cycles.sum()) + s.tail_cycles == pytest.approx(expected)

    def test_no_l2_accesses_all_tail(self, l1):
        addrs = np.full(5, 128, dtype=np.int64)
        gaps = np.zeros(5, dtype=np.int32)
        # Prime so even the first access hits: not possible in one call, so
        # accept 1 miss and check the degenerate empty-stream branch with a
        # trace that never leaves one line after compile: use hits-only case
        # by making trace of length 1 (single compulsory miss).
        s = compile_thread_work(ThreadWork(addrs=addrs[:1], gaps=gaps[:1]), l1, TimingModel())
        assert s.n_l2_accesses == 1
        assert s.tail_instructions == 0

    def test_stream_addresses_get_stream_penalty(self, l1):
        timing = TimingModel()
        addrs = np.array([64, STREAM_BASE_ADDRESS + 64], dtype=np.int64)
        gaps = np.zeros(2, dtype=np.int32)
        s = compile_thread_work(ThreadWork(addrs=addrs, gaps=gaps), l1, timing)
        assert s.miss_cycles[0] == timing.mem_cycles
        assert s.miss_cycles[1] == timing.stream_miss_cycles

    def test_l1_hit_rate_property(self, l1):
        addrs = np.full(4, 64, dtype=np.int64)
        gaps = np.zeros(4, dtype=np.int32)
        s = compile_thread_work(ThreadWork(addrs=addrs, gaps=gaps), l1, TimingModel())
        assert s.l1_hit_rate == pytest.approx(0.75)


class TestCompileProgram:
    def test_shapes_and_totals(self, l1):
        rng = np.random.default_rng(3)

        def w():
            return ThreadWork(
                addrs=rng.integers(0, 1 << 13, size=50, dtype=np.int64),
                gaps=rng.integers(0, 3, size=50).astype(np.int32),
            )

        prog = SyntheticProgram(
            name="t",
            sections=(Section(works=(w(), w())), Section(works=(w(), w()))),
        )
        compiled = compile_program(prog, l1, TimingModel())
        assert compiled.n_threads == 2
        assert len(compiled.sections) == 2
        assert compiled.total_instructions == prog.instructions
        assert compiled.total_l2_accesses > 0
        assert compiled.name == "t"
